#include "core/collection.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "core/index_factory.h"
#include "durability/fail_point.h"
#include "durability/snapshot.h"
#include "util/text.h"
#include "util/top_k_heap.h"

namespace dblsh {

namespace {

/// Maps a runtime storage kind to its durability snapshot tag (the
/// manifest `storage` field and per-shard snapshot header value).
uint32_t SnapshotStorageOf(StorageKind kind) {
  switch (kind) {
    case StorageKind::kSq8:
      return durability::kSnapshotSq8;
    case StorageKind::kPq:
      return durability::kSnapshotPq;
    case StorageKind::kFp32:
      break;
  }
  return durability::kSnapshotFp32;
}

}  // namespace

/// Runtime state of a durable collection. The WAL writer entries are
/// guarded by their shard's write lock (appends and checkpoint swap-ins
/// both hold it); `wal_seq` is guarded by `checkpoint_mutex`; the counters
/// are plain atomics; `dir`/`compact_threshold`/`wal_sync_every` and
/// `recovery_ms`/`replayed` are written once during open.
struct DurabilityState {
  std::string dir;
  double compact_threshold = 0.0;
  uint32_t wal_sync_every = 1;
  /// Serializes checkpoints (rotation + snapshot + manifest).
  std::mutex checkpoint_mutex;
  /// Sequence number of the live WAL segments (`shard-N.wal.<wal_seq>`).
  uint64_t wal_seq = 0;
  /// One writer per shard; an entry is swapped under that shard's write
  /// lock at each checkpoint rotation.
  std::vector<std::unique_ptr<durability::WalWriter>> wals;
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> wal_appends{0};
  uint64_t replayed = 0;
  double recovery_ms = 0.0;
  /// Replication pins (guarded by checkpoint_mutex): pin id -> lowest WAL
  /// segment sequence the holder still needs. Checkpoint's GC only deletes
  /// segments below min(new_seq, every pin's floor), so a subscribed
  /// follower's position is never collected out from under it.
  uint64_t next_pin = 1;
  std::map<uint64_t, uint64_t> wal_pins;
};

Collection::Collection(size_t dim, const CollectionOptions& options)
    : dim_(dim),
      executor_(options.executor != nullptr ? options.executor
                                            : &exec::TaskExecutor::Default()),
      background_rebuild_(options.background_rebuild),
      storage_(options.storage),
      quantized_(options.storage != StorageKind::kFp32),
      pq_m_(std::max<size_t>(1, options.pq_m)),
      rerank_(std::max<size_t>(1, options.rerank)) {
  const size_t num_shards = std::max<size_t>(1, options.shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->store = MakeVectorStore(
        storage_, std::make_unique<FloatMatrix>(0, dim), pq_m_);
    shard->data = &shard->store->matrix();
    shards_.push_back(std::move(shard));
  }
}

Collection::Collection(std::unique_ptr<FloatMatrix> data,
                       const CollectionOptions& options)
    : executor_(options.executor != nullptr ? options.executor
                                            : &exec::TaskExecutor::Default()),
      background_rebuild_(options.background_rebuild),
      storage_(options.storage),
      quantized_(options.storage != StorageKind::kFp32),
      pq_m_(std::max<size_t>(1, options.pq_m)),
      rerank_(std::max<size_t>(1, options.rerank)) {
  assert(data != nullptr);
  dim_ = data->cols();
  const size_t num_shards = std::max<size_t>(1, options.shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (num_shards == 1) {
    // Address-stable adoption: prebuilt indexes over *data stay valid
    // (fp32 storage; quantized stores re-encode, see AddPrebuiltIndex).
    shards_[0]->store = MakeVectorStore(storage_, std::move(data), pq_m_);
  } else {
    // Partition by id: global row g lands in shard g % S at local row
    // g / S, so the per-shard ids stay dense and globally recoverable.
    std::vector<std::unique_ptr<FloatMatrix>> parts;
    parts.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      parts.push_back(std::make_unique<FloatMatrix>(0, dim_));
    }
    const FloatMatrix& src = *data;
    for (size_t g = 0; g < src.rows(); ++g) {
      parts[g % num_shards]->AppendRow(src.row(g), src.cols());
    }
    // Replay the tombstones in erasure order so each shard's LIFO
    // free-list recycles in the same relative order the source would.
    for (const uint32_t g : src.free_slots()) {
      Status erased = parts[g % num_shards]->EraseRow(LocalOfId(g));
      assert(erased.ok());
      (void)erased;
    }
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s]->store =
          MakeVectorStore(storage_, std::move(parts[s]), pq_m_);
    }
  }
  for (auto& shard : shards_) {
    shard->data = &shard->store->matrix();
    shard->approx_rows.store(shard->data->rows(), std::memory_order_relaxed);
    shard->approx_free.store(shard->data->free_slots().size(),
                             std::memory_order_relaxed);
  }
}

Collection::~Collection() {
  {
    std::lock_guard lock(bg_mutex_);
    closing_ = true;
  }
  WaitForRebuilds();
}

Result<std::unique_ptr<Collection>> Collection::FromSpec(
    const std::string& spec, std::unique_ptr<FloatMatrix> data,
    exec::TaskExecutor* executor) {
  static const char* kGrammar =
      "collection spec grammar: \"collection[,shards=N][,rebuild=inline|"
      "background][,storage=fp32|sq8|pq][,m=M][,nbits=8][,rerank=N]"
      "[,durability=PATH][,compact_threshold=R][,wal_sync=N]: INDEX_SPEC (; "
      "INDEX_SPEC)*\", e.g. \"collection,shards=4,storage=pq,m=16:"
      " DB-LSH,c=1.5; PM-LSH,rebuild_threshold=500\"";
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "missing \"collection:\" prefix in \"" + spec + "\"; " + kGrammar);
  }
  auto prefix = IndexFactory::Spec::Parse(text::Trim(spec.substr(0, colon)));
  if (!prefix.ok()) return prefix.status();
  if (!text::EqualsIgnoreCase(text::Trim(prefix.value().name()),
                              "collection")) {
    return Status::InvalidArgument(
        "missing \"collection:\" prefix in \"" + spec + "\"; " + kGrammar);
  }
  CollectionOptions options;
  options.executor = executor;
  std::string rebuild_mode;
  std::string storage_name;
  SpecReader reader(prefix.value());
  reader.Key("shards", &options.shards);
  reader.Key("rebuild", &rebuild_mode);
  reader.Key("storage", &storage_name);
  // SIZE_MAX = key absent (SpecReader leaves the default in place); any
  // provided value, 0 included, must be validated below.
  constexpr size_t kAbsent = std::numeric_limits<size_t>::max();
  size_t spec_m = kAbsent;
  size_t spec_nbits = kAbsent;
  reader.Key("m", &spec_m);
  reader.Key("nbits", &spec_nbits);
  reader.Key("rerank", &options.rerank);
  reader.Key("durability", &options.durability_dir);
  reader.Key("compact_threshold", &options.compact_threshold);
  reader.Key("wal_sync", &options.wal_sync);
  DBLSH_RETURN_IF_ERROR(reader.Finish());
  if (options.shards == 0) {
    return Status::InvalidArgument(
        "collection key \"shards\" must be >= 1; " + std::string(kGrammar));
  }
  if (rebuild_mode == "background") {
    options.background_rebuild = true;
  } else if (!rebuild_mode.empty() && rebuild_mode != "inline") {
    return Status::InvalidArgument(
        "collection key \"rebuild\" expects inline or background, got \"" +
        rebuild_mode + "\"");
  }
  if (!storage_name.empty()) {
    auto kind = ParseStorageKind(storage_name);
    if (!kind.ok()) return kind.status();
    options.storage = kind.value();
  }
  if (options.storage == StorageKind::kPq) {
    if (spec_m != kAbsent) {
      if (spec_m == 0) {
        return Status::InvalidArgument(
            "collection key \"m\" must be >= 1; " + std::string(kGrammar));
      }
      options.pq_m = spec_m;
    }
    if (spec_nbits != kAbsent && spec_nbits != 8) {
      return Status::InvalidArgument(
          "collection key \"nbits\" must be 8 (256-centroid codebooks are "
          "the only supported width), got " + std::to_string(spec_nbits));
    }
    if (data != nullptr && data->cols() > 0 && options.pq_m > data->cols()) {
      return Status::InvalidArgument(
          "collection key \"m\" (" + std::to_string(options.pq_m) +
          ") must be <= the vector dimension (" +
          std::to_string(data->cols()) + ")");
    }
  } else if (spec_m != kAbsent || spec_nbits != kAbsent) {
    return Status::InvalidArgument(
        "collection keys \"m\" and \"nbits\" require storage=pq; " +
        std::string(kGrammar));
  }
  if (options.rerank == 0) {
    return Status::InvalidArgument(
        "collection key \"rerank\" must be >= 1; " + std::string(kGrammar));
  }
  if (options.compact_threshold < 0.0 || options.compact_threshold >= 1.0) {
    return Status::InvalidArgument(
        "collection key \"compact_threshold\" must be in [0, 1); " +
        std::string(kGrammar));
  }
  if (options.wal_sync == 0) {
    return Status::InvalidArgument(
        "collection key \"wal_sync\" must be >= 1; " + std::string(kGrammar));
  }
  if (options.durability_dir.empty() &&
      (options.compact_threshold > 0.0 || options.wal_sync != 1)) {
    return Status::InvalidArgument(
        "collection keys \"compact_threshold\" and \"wal_sync\" require "
        "\"durability=PATH\"");
  }

  std::unique_ptr<Collection> collection;
  if (!options.durability_dir.empty()) {
    auto manifest = durability::LoadManifest(options.durability_dir);
    if (manifest.ok()) {
      // Recover: the directory is the source of truth; seeding rows over
      // existing durable state would silently fork it.
      if (data != nullptr && data->rows() > 0) {
        return Status::InvalidArgument(
            "durability directory \"" + options.durability_dir +
            "\" already holds a checkpoint; open it without seed data (or "
            "point durability= at a fresh directory)");
      }
      const durability::Manifest& m = manifest.value();
      if (m.shards != options.shards) {
        return Status::InvalidArgument(
            "spec says shards=" + std::to_string(options.shards) +
            " but the durable state at \"" + options.durability_dir +
            "\" has " + std::to_string(m.shards) + " shards");
      }
      const uint32_t spec_storage = SnapshotStorageOf(options.storage);
      if (m.storage != spec_storage) {
        return Status::InvalidArgument(
            "spec storage=" + std::string(StorageKindName(options.storage)) +
            " does not match the durable state at \"" +
            options.durability_dir + "\"");
      }
      collection = std::make_unique<Collection>(m.dim, options);
      DBLSH_RETURN_IF_ERROR(collection->RecoverShards(options, m));
    } else if (manifest.status().code() == StatusCode::kNotFound) {
      // Fresh durable collection: seed rows define the geometry.
      if (data == nullptr) {
        return Status::NotFound(
            "durability directory \"" + options.durability_dir +
            "\" holds no durable state (no manifest) and no seed data was "
            "provided; seed a fresh collection or point durability= at an "
            "existing one");
      }
      collection = std::make_unique<Collection>(std::move(data), options);
      DBLSH_RETURN_IF_ERROR(collection->InitDurability(options));
    } else {
      return manifest.status();  // corrupt manifest: never clobber
    }
  } else {
    if (data == nullptr) {
      return Status::InvalidArgument(
          "FromSpec needs seed data (a RAM-only collection cannot recover "
          "from disk); pass an empty FloatMatrix to start empty");
    }
    collection = std::make_unique<Collection>(std::move(data), options);
  }
  const std::string body = spec.substr(colon + 1);
  size_t added = 0;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t semi = body.find(';', pos);
    const std::string part = text::Trim(
        body.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos));
    pos = (semi == std::string::npos) ? body.size() + 1 : semi + 1;
    if (part.empty()) {
      return Status::InvalidArgument("empty index spec in \"" + spec +
                                     "\"; " + std::string(kGrammar));
    }
    DBLSH_RETURN_IF_ERROR(collection->AddIndex(part));
    ++added;
  }
  if (added == 0) {
    return Status::InvalidArgument("collection spec names no indexes; " +
                                   std::string(kGrammar));
  }
  return collection;
}

Result<std::unique_ptr<Collection>> Collection::Open(
    const std::string& spec, exec::TaskExecutor* executor) {
  if (spec.find("durability") == std::string::npos) {
    return Status::InvalidArgument(
        "Collection::Open requires a spec with durability=PATH (there is "
        "no on-disk state to open otherwise)");
  }
  return FromSpec(spec, nullptr, executor);
}

Status Collection::InitDurability(const CollectionOptions& options) {
  DBLSH_RETURN_IF_ERROR(durability::EnsureDir(options.durability_dir));
  durability_ = std::make_unique<DurabilityState>();
  durability_->dir = options.durability_dir;
  durability_->compact_threshold = options.compact_threshold;
  durability_->wal_sync_every = options.wal_sync;
  durability_->wals.resize(shards_.size());
  // The initial checkpoint persists the seed rows and publishes the
  // manifest; its WAL rotation installs the writers every commit needs.
  return Checkpoint();
}

Status Collection::RecoverShards(const CollectionOptions& options,
                                 const durability::Manifest& manifest) {
  const auto t0 = std::chrono::steady_clock::now();
  durability_ = std::make_unique<DurabilityState>();
  durability_->dir = options.durability_dir;
  durability_->compact_threshold = options.compact_threshold;
  durability_->wal_sync_every = options.wal_sync;
  durability_->wals.resize(shards_.size());

  uint64_t max_lsn = manifest.checkpoint_lsn;
  uint64_t max_seq = manifest.wal_seq;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    auto snap_or = durability::LoadShardSnapshot(
        durability::SnapshotPath(durability_->dir, s));
    if (!snap_or.ok()) {
      if (snap_or.status().code() == StatusCode::kNotFound) {
        return Status::Corruption(
            "durability: manifest present but shard " + std::to_string(s) +
            " snapshot is missing in " + durability_->dir);
      }
      return snap_or.status();
    }
    durability::ShardSnapshot snap = std::move(snap_or).value();
    if (snap.dim != dim_) {
      return Status::Corruption(
          "durability: shard " + std::to_string(s) + " snapshot dim " +
          std::to_string(snap.dim) + " does not match manifest dim " +
          std::to_string(dim_));
    }

    // Rebuild the store image. The free-list is replayed in erasure order
    // so InsertRow recycling during WAL replay reproduces the original
    // LIFO id assignment exactly.
    if (snap.storage == durability::kSnapshotSq8) {
      // Metadata shell: right shape, fp32 payload dropped immediately —
      // the codes below are the payload.
      auto shell = std::make_unique<FloatMatrix>(snap.rows, dim_);
      shell->ReleasePayload();
      for (const uint32_t slot : snap.free_slots) {
        DBLSH_RETURN_IF_ERROR(shell->EraseRow(slot));
      }
      shard.store = std::make_unique<Sq8Store>(
          std::move(shell), std::move(snap.scales), std::move(snap.offsets),
          std::move(snap.codes), snap.trained);
    } else if (snap.storage == durability::kSnapshotPq) {
      if (snap.pq_m != pq_m_) {
        return Status::Corruption(
            "durability: shard " + std::to_string(s) + " snapshot pq m=" +
            std::to_string(snap.pq_m) + " does not match the spec's m=" +
            std::to_string(pq_m_) +
            " (reopen with the m the collection was created with)");
      }
      auto shell = std::make_unique<FloatMatrix>(snap.rows, dim_);
      shell->ReleasePayload();
      for (const uint32_t slot : snap.free_slots) {
        DBLSH_RETURN_IF_ERROR(shell->EraseRow(slot));
      }
      // Adopt the snapshot's codebooks + codes verbatim: restore is
      // byte-identical, never a re-train/re-encode.
      shard.store = std::make_unique<PqStore>(
          std::move(shell), snap.pq_m, std::move(snap.codebooks),
          std::move(snap.codes), snap.trained);
    } else {
      auto matrix = std::make_unique<FloatMatrix>(snap.rows, dim_,
                                                  std::move(snap.fp32));
      for (const uint32_t slot : snap.free_slots) {
        DBLSH_RETURN_IF_ERROR(matrix->EraseRow(slot));
      }
      shard.store = std::make_unique<Fp32Store>(std::move(matrix));
    }
    shard.data = &shard.store->matrix();
    max_lsn = std::max(max_lsn, snap.lsn);
    shard.applied_lsn = snap.lsn;

    // Replay the log: every segment at/after the manifest's generation,
    // ascending, skipping records the snapshot already covers.
    const std::vector<uint64_t> seqs =
        durability::ListWalSegments(durability_->dir, s);
    for (size_t i = 0; i < seqs.size(); ++i) {
      if (!seqs.empty()) max_seq = std::max(max_seq, seqs[i]);
      if (seqs[i] < manifest.wal_seq) continue;  // superseded, not yet GC'd
      const bool last = i + 1 == seqs.size();
      auto replay_or = durability::ReadWal(
          durability::WalPath(durability_->dir, s, seqs[i]),
          static_cast<uint32_t>(dim_));
      if (!replay_or.ok()) {
        // A torn *header* can only be the newest segment, killed during
        // checkpoint rotation before any record (or acknowledgement)
        // existed — skip it. Anywhere else it is real damage.
        if (last && replay_or.status().code() == StatusCode::kCorruption) {
          continue;
        }
        return replay_or.status();
      }
      const durability::WalReplay& replay = replay_or.value();
      if (!replay.tail.ok() && !last) {
        return replay.tail;  // torn tail mid-history: not a crash artifact
      }
      for (const durability::WalRecord& rec : replay.records) {
        if (rec.lsn <= snap.lsn) continue;
        max_lsn = std::max(max_lsn, rec.lsn);
        shard.applied_lsn = std::max(shard.applied_lsn, rec.lsn);
        ++durability_->replayed;
        switch (rec.op) {
          case durability::WalOp::kRetrain: {
            // Deterministic params-from-codes retrain: replays to the
            // exact byte state the primary (or pre-crash process) had.
            shard.store->RetrainQuantizer();
            break;
          }
          case durability::WalOp::kTrim: {
            const size_t trimmed = shard.store->TrimTombstonedTail();
            if (trimmed != rec.id) {
              return Status::Corruption(
                  "durability: wal replay divergence on shard " +
                  std::to_string(s) + ": trim removed " +
                  std::to_string(trimmed) + " rows, log recorded " +
                  std::to_string(rec.id));
            }
            break;
          }
          case durability::WalOp::kDelete: {
            if (ShardOfId(rec.id) != s) {
              return Status::Corruption(
                  "durability: wal record for id " + std::to_string(rec.id) +
                  " found in shard " + std::to_string(s) + "'s log");
            }
            if (Status st = shard.store->EraseRow(LocalOfId(rec.id));
                !st.ok()) {
              return Status::Corruption(
                  "durability: wal replay divergence on shard " +
                  std::to_string(s) + ": " + st.ToString());
            }
            break;
          }
          case durability::WalOp::kUpsert: {
            if (ShardOfId(rec.id) != s) {
              return Status::Corruption(
                  "durability: wal record for id " + std::to_string(rec.id) +
                  " found in shard " + std::to_string(s) + "'s log");
            }
            const uint32_t local = LocalOfId(rec.id);
            if (local < shard.data->rows() && !shard.data->IsDeleted(local)) {
              // In-place replace: erase + insert fused, exactly like
              // Upsert(id) — the LIFO free-list hands the slot back.
              if (Status st = shard.store->EraseRow(local); !st.ok()) {
                return Status::Corruption(
                    "durability: wal replay divergence on shard " +
                    std::to_string(s) + ": " + st.ToString());
              }
            }
            const uint32_t got = shard.store->InsertRow(rec.vec.data(), dim_);
            if (got != local) {
              return Status::Corruption(
                  "durability: wal replay divergence on shard " +
                  std::to_string(s) + ": insert landed on local row " +
                  std::to_string(got) + ", log recorded " +
                  std::to_string(local));
            }
            break;
          }
        }
      }
    }
    shard.approx_rows.store(shard.data->rows(), std::memory_order_relaxed);
    shard.approx_free.store(shard.data->free_slots().size(),
                            std::memory_order_relaxed);
  }
  epoch_.store(max_lsn, std::memory_order_release);
  // Start the new generation past every segment on disk — including
  // orphans a crashed rotation left above the manifest's generation.
  durability_->wal_seq = max_seq;
  const auto t1 = std::chrono::steady_clock::now();
  durability_->recovery_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Checkpoint-on-open: rotates onto fresh segments (installing the WAL
  // writers), folds the replay into new snapshots, and garbage-collects
  // torn tails with the superseded segments.
  return Checkpoint();
}

Status Collection::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "collection has no durability= configured; nothing to checkpoint");
  }
  DurabilityState& d = *durability_;
  std::lock_guard ckpt_lock(d.checkpoint_mutex);
  const uint64_t new_seq = d.wal_seq + 1;

  std::vector<durability::ShardSnapshot> snaps(shards_.size());
  uint64_t checkpoint_lsn = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    // Open the replacement segment before taking the lock (file creation
    // off the writer's critical path). On failure the old segment stays
    // live; the orphan file is skipped at recovery (header checks) and
    // its sequence number is never reused (max-seq scan on open).
    auto writer_or = durability::WalWriter::Create(
        durability::WalPath(d.dir, s, new_seq), static_cast<uint32_t>(dim_),
        d.wal_sync_every);
    if (!writer_or.ok()) return writer_or.status();

    std::unique_lock lock(shard.mutex);
    durability::ShardSnapshot& snap = snaps[s];
    snap.dim = dim_;
    snap.rows = shard.data->rows();
    snap.free_slots = shard.data->free_slots();
    // Captured under the shard write lock: every record this shard wrote
    // to the outgoing segment has lsn <= this value, and every record it
    // will write to the incoming one has lsn > it — the replay filter's
    // exact contract. The *shard's* applied LSN (not the global epoch):
    // on a follower the per-shard streams progress independently, so a
    // sibling shard's higher LSN must not mask this shard's undelivered
    // records.
    snap.lsn = shard.applied_lsn;
    if (storage_ == StorageKind::kSq8) {
      const auto* sq8 = static_cast<const Sq8Store*>(shard.store.get());
      snap.storage = durability::kSnapshotSq8;
      snap.scales = sq8->scales();
      snap.offsets = sq8->offsets();
      snap.codes = sq8->codes();
      snap.trained = sq8->trained();
    } else if (storage_ == StorageKind::kPq) {
      const auto* pq = static_cast<const PqStore*>(shard.store.get());
      snap.storage = durability::kSnapshotPq;
      snap.pq_m = static_cast<uint32_t>(pq->m());
      snap.codebooks = pq->codebooks();
      snap.codes = pq->codes();
      snap.trained = pq->trained();
    } else {
      snap.storage = durability::kSnapshotFp32;
      snap.fp32 = shard.data->data();
      snap.trained = true;
    }
    d.wals[s] = std::move(writer_or).value();
    checkpoint_lsn = std::max(checkpoint_lsn, snap.lsn);
  }

  // Persist off-lock: writers append to the new segments meanwhile, and a
  // crash anywhere in here recovers from the old manifest + old segments
  // (still on disk) plus the new ones (>= old wal_seq, replayed too).
  for (size_t s = 0; s < shards_.size(); ++s) {
    DBLSH_RETURN_IF_ERROR(durability::SaveShardSnapshot(
        durability::SnapshotPath(d.dir, s), snaps[s]));
  }
  durability::Manifest manifest;
  manifest.shards = static_cast<uint32_t>(shards_.size());
  manifest.dim = static_cast<uint32_t>(dim_);
  manifest.storage = SnapshotStorageOf(storage_);
  manifest.wal_seq = new_seq;
  manifest.checkpoint_lsn = checkpoint_lsn;
  DBLSH_RETURN_IF_ERROR(durability::SaveManifest(d.dir, manifest));

  // Committed (manifest renamed): the superseded segments are garbage —
  // except those a replication pin still needs (a subscribed follower may
  // be mid-way through an older generation).
  uint64_t gc_before = new_seq;
  for (const auto& [pin, floor] : d.wal_pins) {
    gc_before = std::min(gc_before, floor);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (const uint64_t seq : durability::ListWalSegments(d.dir, s)) {
      if (seq < gc_before) {
        std::remove(durability::WalPath(d.dir, s, seq).c_str());
      }
    }
  }
  d.wal_seq = new_seq;
  d.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

CollectionDurabilityInfo Collection::Durability() const {
  CollectionDurabilityInfo info;
  if (durability_ == nullptr) return info;
  info.enabled = true;
  info.dir = durability_->dir;
  info.compact_threshold = durability_->compact_threshold;
  info.checkpoints =
      durability_->checkpoints.load(std::memory_order_relaxed);
  info.compactions =
      durability_->compactions.load(std::memory_order_relaxed);
  info.wal_appends =
      durability_->wal_appends.load(std::memory_order_relaxed);
  info.replayed_records = durability_->replayed;
  info.recovery_ms = durability_->recovery_ms;
  return info;
}

void Collection::SetReadOnly(const std::string& primary_hint) {
  read_only_message_ = "read-only replica; writes go to " + primary_hint;
  read_only_.store(true, std::memory_order_release);
}

std::vector<uint64_t> Collection::ShardAppliedLsns() const {
  std::vector<uint64_t> out(shards_.size(), 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock lock(shards_[s]->mutex);
    out[s] = shards_[s]->applied_lsn;
  }
  return out;
}

uint64_t Collection::AcquireWalPin(uint64_t min_seq) {
  if (durability_ == nullptr) return 0;
  std::lock_guard lock(durability_->checkpoint_mutex);
  const uint64_t pin = durability_->next_pin++;
  durability_->wal_pins[pin] = min_seq;
  return pin;
}

void Collection::UpdateWalPin(uint64_t pin, uint64_t min_seq) {
  if (durability_ == nullptr || pin == 0) return;
  std::lock_guard lock(durability_->checkpoint_mutex);
  auto it = durability_->wal_pins.find(pin);
  if (it != durability_->wal_pins.end()) it->second = min_seq;
}

void Collection::ReleaseWalPin(uint64_t pin) {
  if (durability_ == nullptr || pin == 0) return;
  std::lock_guard lock(durability_->checkpoint_mutex);
  durability_->wal_pins.erase(pin);
}

Status Collection::ApplyReplicatedRecord(size_t shard_index,
                                         const durability::WalRecord& rec) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument(
        "replication: shard " + std::to_string(shard_index) +
        " out of range (collection has " + std::to_string(shards_.size()) +
        " shards)");
  }
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  // A retrain record shares its triggering mutation's LSN (ordered after
  // it), so at exactly the applied LSN a retrain must still apply — the
  // feed redelivers it on resume, and re-applying one is a no-op.
  const bool retrain_at_head = rec.op == durability::WalOp::kRetrain &&
                               rec.lsn == shard.applied_lsn;
  if (rec.lsn <= shard.applied_lsn && !retrain_at_head) {
    return Status::OK();  // duplicate delivery after a reconnect
  }
  size_t keep = 0;
  if (durability::FailPoints::Instance().Hit(durability::kFailReplicationApply,
                                             &keep)) {
    return Status::IoError("replication: injected crash applying lsn " +
                           std::to_string(rec.lsn));
  }

  switch (rec.op) {
    case durability::WalOp::kTrim: {
      const size_t trimmed = shard.store->TrimTombstonedTail();
      if (trimmed != rec.id) {
        return Status::Corruption(
            "replication: divergence on shard " + std::to_string(shard_index) +
            ": trim removed " + std::to_string(trimmed) +
            " rows, primary recorded " + std::to_string(rec.id));
      }
      // The trim and the index rebuilds share this critical section, like
      // RunCompaction on the primary: an index still referencing a trimmed
      // row would hand out ids past the new frontier.
      std::optional<ScopedDecodeView> view;
      for (Slot& slot : shard.slots) {
        if (!slot.built) continue;
        if (shard.data->live_rows() == 0) {
          slot.built = false;
          slot.staleness = 0;
          continue;
        }
        if (quantized_ && !view.has_value()) view.emplace(shard.store.get());
        if (Status s = slot.index->Build(shard.data); !s.ok()) {
          slot.built = false;
          slot.build_error = s.ToString();
        } else {
          ++slot.rebuilds;
          slot.staleness = 0;
          slot.build_error.clear();
        }
      }
      break;
    }
    case durability::WalOp::kRetrain: {
      shard.store->RetrainQuantizer();
      // The codes changed under every built index; force the rebuild the
      // primary ran in the same commit (MaybeRebuildLocked below).
      for (Slot& slot : shard.slots) {
        if (slot.built) slot.staleness = slot.rebuild_threshold;
      }
      break;
    }
    case durability::WalOp::kDelete: {
      if (ShardOfId(rec.id) != shard_index) {
        return Status::Corruption(
            "replication: record for id " + std::to_string(rec.id) +
            " shipped to shard " + std::to_string(shard_index));
      }
      const uint32_t local = LocalOfId(rec.id);
      if (Status st = shard.store->EraseRow(local); !st.ok()) {
        return Status::Corruption("replication: divergence on shard " +
                                  std::to_string(shard_index) + ": " +
                                  st.ToString());
      }
      if (!quantized_) {
        for (Slot& slot : shard.slots) {
          if (!slot.built || !slot.index->SupportsUpdates()) continue;
          if (Status s = slot.index->Erase(local); !s.ok()) {
            slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
          }
        }
      }
      break;
    }
    case durability::WalOp::kUpsert: {
      if (ShardOfId(rec.id) != shard_index) {
        return Status::Corruption(
            "replication: record for id " + std::to_string(rec.id) +
            " shipped to shard " + std::to_string(shard_index));
      }
      if (rec.vec.size() != dim_) {
        return Status::Corruption(
            "replication: upsert payload has " +
            std::to_string(rec.vec.size()) + " floats, collection serves " +
            std::to_string(dim_));
      }
      const uint32_t local = LocalOfId(rec.id);
      if (local < shard.data->rows() && !shard.data->IsDeleted(local)) {
        // In-place replace: erase + insert fused, exactly like Upsert(id)
        // — the LIFO free-list hands the slot straight back.
        if (Status st = shard.store->EraseRow(local); !st.ok()) {
          return Status::Corruption("replication: divergence on shard " +
                                    std::to_string(shard_index) + ": " +
                                    st.ToString());
        }
        if (!quantized_) {
          for (Slot& slot : shard.slots) {
            if (!slot.built || !slot.index->SupportsUpdates()) continue;
            if (Status s = slot.index->Erase(local); !s.ok()) {
              slot.staleness = slot.rebuild_threshold;
            }
          }
        }
      }
      const uint32_t got = shard.store->InsertRow(rec.vec.data(), dim_);
      if (got != local) {
        return Status::Corruption(
            "replication: divergence on shard " + std::to_string(shard_index) +
            ": insert landed on local row " + std::to_string(got) +
            ", primary recorded " + std::to_string(local));
      }
      if (!quantized_) {
        for (Slot& slot : shard.slots) {
          if (!slot.built || !slot.index->SupportsUpdates()) continue;
          if (slot.staleness >= slot.rebuild_threshold) continue;
          if (Status s = slot.index->Insert(got); !s.ok()) {
            slot.staleness = slot.rebuild_threshold;
          }
        }
      }
      break;
    }
  }

  // Commit bookkeeping, mirroring CommitMutationLocked except that the LSN
  // comes from the primary instead of the local epoch counter.
  for (Slot& slot : shard.slots) {
    if (quantized_ || !(slot.built && slot.index->SupportsUpdates())) {
      ++slot.staleness;
    }
  }
  ++shard.version;
  shard.approx_rows.store(shard.data->rows(), std::memory_order_relaxed);
  shard.approx_free.store(shard.data->free_slots().size(),
                          std::memory_order_relaxed);
  shard.applied_lsn = rec.lsn;
  uint64_t cur = epoch_.load(std::memory_order_relaxed);
  while (cur < rec.lsn &&
         !epoch_.compare_exchange_weak(cur, rec.lsn,
                                       std::memory_order_acq_rel)) {
  }

  Status logged = Status::OK();
  if (durability_ != nullptr) {
    durability::WalWriter* writer = durability_->wals[shard_index].get();
    if (writer == nullptr) {
      logged = Status::IoError(
          "wal: no live segment for shard " + std::to_string(shard_index) +
          " (a failed checkpoint rotation poisoned this collection)");
    } else {
      // The follower's own WAL carries the primary's LSN, so a restart
      // recovers locally and re-subscribes from exactly where it stopped.
      logged = writer->Append(rec.lsn, rec.op, rec.id,
                              rec.op == durability::WalOp::kUpsert
                                  ? rec.vec.data()
                                  : nullptr);
      if (logged.ok()) {
        durability_->wal_appends.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  MaybeRebuildLocked(shard_index);
  return logged;
}

Status Collection::AddIndex(const std::string& index_spec) {
  auto parsed = IndexFactory::Spec::Parse(index_spec);
  if (!parsed.ok()) return parsed.status();
  const IndexFactory::Spec& spec = parsed.value();

  // Peel off the slot-level keys before the factory sees the spec.
  std::string slot_name;
  size_t rebuild_threshold = kDefaultRebuildThreshold;
  std::string method_spec = spec.name();
  for (const auto& [key, value] : spec.values()) {
    if (key == "name") {
      slot_name = value;
      continue;
    }
    if (key == "rebuild_threshold") {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || value.front() == '-') {
        return Status::InvalidArgument(
            "collection key \"rebuild_threshold\" expects a non-negative "
            "integer, got \"" + value + "\"");
      }
      rebuild_threshold = std::max<size_t>(1, static_cast<size_t>(n));
      continue;
    }
    method_spec += "," + key + "=" + value;
  }

  // One instance per shard (each shard indexes its own partition).
  const size_t num_shards = shards_.size();
  std::vector<std::unique_ptr<AnnIndex>> instances;
  instances.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto made = IndexFactory::Make(method_spec);
    if (!made.ok()) return made.status();
    instances.push_back(std::move(made).value());
  }
  if (slot_name.empty()) slot_name = instances[0]->Name();

  // Write transaction over every shard; ascending order keeps concurrent
  // AddIndex calls deadlock-free against the single-shard writers.
  std::vector<std::unique_lock<WriterPriorityMutex>> locks;
  locks.reserve(num_shards);
  for (auto& shard : shards_) locks.emplace_back(shard->mutex);
  for (const Slot& slot : shards_[0]->slots) {
    if (slot.name == slot_name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + slot_name +
          "\"; disambiguate with a name= spec key");
    }
  }

  // First builds of the non-empty shards run in parallel on the executor
  // (the build bodies take no locks; the caller holds them all). Under
  // quantized storage each shard materializes a decoded fp32 view for the
  // duration of its build — builds read matrix().row(), stores keep codes.
  std::vector<Status> builds(num_shards, Status::OK());
  executor_->ParallelFor(num_shards, [&](size_t s) {
    if (shards_[s]->data->live_rows() > 0) {
      ScopedDecodeView view(shards_[s]->store.get());
      builds[s] = instances[s]->Build(shards_[s]->data);
    }
  });
  for (const Status& status : builds) {
    if (!status.ok()) return status;  // nothing published on any shard
  }

  for (size_t s = 0; s < num_shards; ++s) {
    Slot slot;
    slot.name = slot_name;
    slot.method_spec = method_spec;
    slot.index = std::move(instances[s]);
    slot.built = shards_[s]->data->live_rows() > 0;
    slot.rebuild_threshold = rebuild_threshold;
    slot.query_mutex = std::make_unique<std::mutex>();
    // Empty shard: stay unbuilt; the shard's first mutation triggers the
    // lazy build (MaybeRebuildLocked).
    shards_[s]->slots.push_back(std::move(slot));
  }
  return Status::OK();
}

Status Collection::AddPrebuiltIndex(const std::string& name,
                                    std::unique_ptr<AnnIndex> index,
                                    size_t rebuild_threshold) {
  if (index == nullptr) {
    return Status::InvalidArgument("AddPrebuiltIndex: index is null");
  }
  if (shards_.size() > 1) {
    return Status::InvalidArgument(
        "AddPrebuiltIndex requires shards=1: a prebuilt index speaks the "
        "global id space, which only matches shard 0 of an unsharded "
        "collection");
  }
  if (quantized_) {
    return Status::InvalidArgument(
        "AddPrebuiltIndex requires storage=fp32: a prebuilt index holds "
        "state computed over the fp32 payload the quantized store has "
        "released; load into an fp32 collection or AddIndex to rebuild "
        "from codes");
  }
  Shard& shard = *shards_[0];
  std::unique_lock lock(shard.mutex);
  for (const Slot& slot : shard.slots) {
    if (slot.name == name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + name + "\"");
    }
  }
  Slot slot;
  slot.name = name;
  slot.method_spec = index->Name() + " (prebuilt)";
  slot.index = std::move(index);
  slot.built = true;
  slot.rebuild_threshold = std::max<size_t>(1, rebuild_threshold);
  slot.query_mutex = std::make_unique<std::mutex>();
  shard.slots.push_back(std::move(slot));
  return Status::OK();
}

void Collection::MaybeRebuildLocked(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Quantized storage: the first inline build of this pass materializes a
  // decoded fp32 view, every later build in the pass reuses it, and the
  // optional's destructor releases it on exit (no-op construction when no
  // slot builds).
  std::optional<ScopedDecodeView> view;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    Slot& slot = shard.slots[i];
    const bool lazy_first_build = !slot.built && shard.data->live_rows() > 0;
    const bool threshold_hit =
        slot.built && slot.staleness >= slot.rebuild_threshold;
    if (!lazy_first_build && !threshold_hit) continue;
    if (background_rebuild_ && threshold_hit) {
      // Offload: the writer keeps going; the executor snapshots, builds
      // and swaps in under this lock later (RunBackgroundRebuild). Lazy
      // first builds stay inline — there is no old index to keep serving.
      if (!slot.rebuild_scheduled) {
        slot.rebuild_scheduled = true;
        ScheduleRebuild(shard_index, i);
      }
      continue;
    }
    if (quantized_ && !view.has_value()) view.emplace(shard.store.get());
    if (Status s = slot.index->Build(shard.data); !s.ok()) {
      // A failed (re)build leaves the slot out of service but the
      // collection consistent: mark unbuilt so routing skips it, record
      // the error for Indexes(), and retry at the next mutation. The
      // mutation that got us here stays committed.
      slot.built = false;
      slot.build_error = s.ToString();
      continue;
    }
    if (slot.built) ++slot.rebuilds;  // lazy first builds are not rebuilds
    slot.built = true;
    slot.staleness = 0;
    slot.build_error.clear();
  }
}

void Collection::ScheduleRebuild(size_t shard_index, size_t slot_index) {
  {
    std::lock_guard lock(bg_mutex_);
    if (closing_) {
      // A mutation racing the destructor is a caller bug; stay safe.
      shards_[shard_index]->slots[slot_index].rebuild_scheduled = false;
      return;
    }
    ++bg_inflight_;
  }
  executor_->Schedule([this, shard_index, slot_index] {
    RunBackgroundRebuild(shard_index, slot_index);
    // Decrement and notify under the lock: the destructor may tear the
    // collection down the instant it observes bg_inflight_ == 0, and it
    // can only observe that after this critical section fully releases —
    // a notify outside the lock would race it into use-after-free.
    std::lock_guard lock(bg_mutex_);
    --bg_inflight_;
    bg_cv_.notify_all();
  });
}

void Collection::RunBackgroundRebuild(size_t shard_index, size_t slot_index) {
  Shard& shard = *shards_[shard_index];
  for (int attempt = 0; attempt < 3; ++attempt) {
    // 1. Snapshot the shard under the shared lock (readers keep serving,
    //    the writer is not excluded for longer than a matrix copy). Under
    //    quantized storage the snapshot is the store's decoded fp32
    //    reconstruction (DecodedCopy); for fp32 it is the byte-identical
    //    matrix copy this always was.
    FloatMatrix snapshot;
    uint64_t version = 0;
    std::string method_spec;
    {
      std::shared_lock lock(shard.mutex);
      snapshot = shard.store->DecodedCopy();
      version = shard.version;
      method_spec = shard.slots[slot_index].method_spec;
    }

    // 2. Build a replacement index over the snapshot, off every lock —
    //    this is the expensive part the writer no longer pays for.
    auto made = IndexFactory::Make(method_spec);
    Status built =
        made.ok() ? made.value()->Build(&snapshot) : made.status();

    // 3. Swap in under the write lock, but only if the shard is exactly
    //    as the snapshot captured it; otherwise retry with a fresh copy.
    std::unique_lock lock(shard.mutex);
    Slot& slot = shard.slots[slot_index];
    if (!built.ok()) {
      // Unlike an inline rebuild failure, the old index is still coherent
      // (tombstones keep filtering) — keep it serving and surface the
      // error; the next commit past the threshold re-schedules us.
      slot.build_error = built.ToString();
      slot.rebuild_scheduled = false;
      return;
    }
    if (shard.version != version) continue;  // mutated mid-build: retry

    if (Status rebound = made.value()->RebindData(shard.data);
        !rebound.ok()) {
      // Index type without rebind support: fall back to the pre-refactor
      // inline rebuild under the lock (correct, just blocking). Quantized
      // stores need the decoded view for the duration of the build.
      std::optional<ScopedDecodeView> view;
      if (quantized_) view.emplace(shard.store.get());
      if (Status s = slot.index->Build(shard.data); !s.ok()) {
        slot.built = false;
        slot.build_error = s.ToString();
      } else {
        slot.built = true;
        ++slot.rebuilds;
        slot.staleness = 0;
        slot.build_error.clear();
      }
      slot.rebuild_scheduled = false;
      return;
    }
    slot.index = std::move(made).value();
    slot.built = true;
    slot.staleness = 0;
    ++slot.rebuilds;
    slot.build_error.clear();
    slot.rebuild_scheduled = false;
    return;
  }
  // The writer mutated through every attempt. Yield: staleness is still at
  // or past the threshold, so the very next commit re-schedules a rebuild.
  std::unique_lock lock(shard.mutex);
  shard.slots[slot_index].rebuild_scheduled = false;
}

void Collection::WaitForRebuilds() const {
  for (;;) {
    {
      std::unique_lock lock(bg_mutex_);
      if (bg_cv_.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return bg_inflight_ == 0; })) {
        return;
      }
    }
    // Lend this thread to the executor so a narrow pool cannot starve the
    // very task being awaited (the caller holds no collection locks here).
    executor_->RunOnePendingTask();
  }
}

Status Collection::CommitMutationLocked(size_t shard_index,
                                        durability::WalOp op,
                                        uint32_t global_id, const float* vec) {
  Shard& shard = *shards_[shard_index];
  for (Slot& slot : shard.slots) {
    // Updatable built slots absorbed the mutation structurally (the caller
    // ran Insert/Erase on them); everyone else just got staler. Under
    // quantized storage every slot is static — in-place index maintenance
    // reads fp32 rows the store has released — so all of them age.
    if (quantized_ || !(slot.built && slot.index->SupportsUpdates())) {
      ++slot.staleness;
    }
  }
  ++shard.version;
  shard.approx_rows.store(shard.data->rows(), std::memory_order_relaxed);
  shard.approx_free.store(shard.data->free_slots().size(),
                          std::memory_order_relaxed);
  // Committed: exactly one epoch per successful mutation, build failures
  // notwithstanding (failing slots are out of service, not blocking).
  // Under durability the post-increment epoch value is the mutation's LSN.
  const uint64_t lsn = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  shard.applied_lsn = lsn;

  Status logged = Status::OK();
  durability::WalWriter* writer = nullptr;
  if (durability_ != nullptr) {
    writer = durability_->wals[shard_index].get();
    if (writer == nullptr) {
      logged = Status::IoError(
          "wal: no live segment for shard " + std::to_string(shard_index) +
          " (a failed checkpoint rotation poisoned this collection)");
    } else {
      // Log-after-apply is sound here because disk state only changes at
      // checkpoints: a record that fails to land is simply never replayed,
      // and the poisoned writer keeps every *later* mutation unlogged too,
      // so the durable history stays a prefix of the acknowledged one.
      logged = writer->Append(lsn, op, global_id, vec);
      if (logged.ok()) {
        durability_->wal_appends.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // SQ8 range retraining rides the inline threshold rebuild: when this
  // mutation pushes a built slot to its rebuild threshold under quantized
  // storage, re-derive the quantizer range from the current rows before
  // the rebuild below, and log the retrain (same LSN as the mutation,
  // ordered after it) so replay and replication reproduce the exact code
  // bytes. Background rebuilds skip the retrain: their timing is
  // nondeterministic, and replayability demands the log alone decide when
  // codes change.
  if (quantized_ && !background_rebuild_) {
    bool threshold_hit = false;
    for (const Slot& slot : shard.slots) {
      if (slot.built && slot.staleness >= slot.rebuild_threshold) {
        threshold_hit = true;
        break;
      }
    }
    if (threshold_hit && shard.store->RetrainQuantizer() &&
        writer != nullptr && logged.ok()) {
      logged = writer->Append(lsn, durability::WalOp::kRetrain, 0, nullptr);
      if (logged.ok()) {
        durability_->wal_appends.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // The rebuild runs after any retrain so the new index is built over the
  // re-encoded codes.
  MaybeRebuildLocked(shard_index);
  if (durability_ == nullptr) return Status::OK();
  MaybeCompactLocked(shard_index);
  return logged;
}

void Collection::MaybeCompactLocked(size_t shard_index) {
  if (durability_ == nullptr || durability_->compact_threshold <= 0.0) return;
  Shard& shard = *shards_[shard_index];
  if (shard.compact_scheduled) return;
  const size_t rows = shard.data->rows();
  if (rows == 0) return;
  const size_t dead = rows - shard.data->live_rows();
  if (dead <= shard.compact_floor) return;  // nothing new to reclaim
  if (static_cast<double>(dead) / static_cast<double>(rows) <
      durability_->compact_threshold) {
    return;
  }
  shard.compact_scheduled = true;
  ScheduleCompaction(shard_index);
}

void Collection::ScheduleCompaction(size_t shard_index) {
  {
    std::lock_guard lock(bg_mutex_);
    if (closing_) {
      shards_[shard_index]->compact_scheduled = false;
      return;
    }
    ++bg_inflight_;
  }
  executor_->Schedule([this, shard_index] {
    RunCompaction(shard_index);
    // Decrement and notify under the lock (same use-after-free hazard as
    // ScheduleRebuild: the destructor may proceed the instant it sees 0).
    std::lock_guard lock(bg_mutex_);
    --bg_inflight_;
    bg_cv_.notify_all();
  });
}

void Collection::RunCompaction(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  bool landed = false;
  for (int attempt = 0; attempt < 3 && !landed; ++attempt) {
    // 1. Snapshot the shard under the shared lock — readers keep serving.
    FloatMatrix snapshot;
    uint64_t version = 0;
    std::vector<std::string> method_specs;
    {
      std::shared_lock lock(shard.mutex);
      snapshot = shard.store->DecodedCopy();
      version = shard.version;
      method_specs.reserve(shard.slots.size());
      for (const Slot& slot : shard.slots) {
        method_specs.push_back(slot.method_spec);
      }
    }

    // 2. Off-lock: trim the copy and build replacement indexes over the
    //    compacted geometry. Only trailing tombstones are physically
    //    reclaimable (live ids never move).
    if (snapshot.TrimTombstonedTail() == 0) {
      std::unique_lock lock(shard.mutex);
      // Interior tombstones only: raise the floor so the trigger stays
      // quiet until more deletes land, instead of rescheduling forever.
      shard.compact_floor = shard.data->rows() - shard.data->live_rows();
      shard.compact_scheduled = false;
      return;
    }
    std::vector<std::unique_ptr<AnnIndex>> replacements;
    replacements.reserve(method_specs.size());
    bool build_failed = false;
    for (const std::string& spec : method_specs) {
      auto made = IndexFactory::Make(spec);
      Status built = made.ok() ? Status::OK() : made.status();
      if (built.ok() && snapshot.live_rows() > 0) {
        built = made.value()->Build(&snapshot);
      }
      if (!built.ok()) {
        build_failed = true;
        break;
      }
      replacements.push_back(std::move(made).value());
    }

    // 3. Land under the write lock if the shard did not mutate meanwhile.
    {
      std::unique_lock lock(shard.mutex);
      if (shard.version != version) continue;  // mutated mid-build: retry
      if (build_failed) {
        shard.compact_scheduled = false;  // keep serving uncompacted
        return;
      }
      const size_t trimmed = shard.store->TrimTombstonedTail();
      // Log the rewrite so mutations recorded after it replay against the
      // compacted geometry (see WalOp::kTrim). A failed append poisons the
      // writer: the in-memory trim stands, but nothing later is acked, so
      // the durable history stays consistent without it.
      const uint64_t lsn = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
      shard.applied_lsn = lsn;
      if (durability::WalWriter* writer =
              durability_->wals[shard_index].get();
          writer != nullptr) {
        Status logged =
            writer->Append(lsn, durability::WalOp::kTrim,
                           static_cast<uint32_t>(trimmed), nullptr);
        if (logged.ok()) {
          durability_->wal_appends.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // The trim and the index swap share this critical section: an index
      // still referencing a trimmed row would hand out ids past the new
      // frontier, where IsDeleted no longer vouches for them.
      for (size_t i = 0; i < shard.slots.size(); ++i) {
        Slot& slot = shard.slots[i];
        if (shard.data->live_rows() == 0) {
          slot.built = false;  // lazy build at the next mutation
          slot.staleness = 0;
          continue;
        }
        if (Status rebound = replacements[i]->RebindData(shard.data);
            !rebound.ok()) {
          // No rebind support: inline rebuild under the lock (correct,
          // just blocking), mirroring RunBackgroundRebuild's fallback.
          std::optional<ScopedDecodeView> view;
          if (quantized_) view.emplace(shard.store.get());
          if (Status s = slot.index->Build(shard.data); !s.ok()) {
            slot.built = false;
            slot.build_error = s.ToString();
          } else {
            slot.built = true;
            ++slot.rebuilds;
            slot.staleness = 0;
            slot.build_error.clear();
          }
          continue;
        }
        slot.index = std::move(replacements[i]);
        slot.built = true;
        ++slot.rebuilds;
        slot.staleness = 0;
        slot.build_error.clear();
      }
      shard.compact_floor = shard.data->rows() - shard.data->live_rows();
      shard.compact_scheduled = false;
      // Invalidate any background rebuild racing us: its snapshot predates
      // the trim and its swap-in must not land over the new geometry.
      ++shard.version;
      shard.approx_rows.store(shard.data->rows(), std::memory_order_relaxed);
      shard.approx_free.store(shard.data->free_slots().size(),
                              std::memory_order_relaxed);
      landed = true;
    }
  }
  if (!landed) {
    // The writer mutated through every attempt; the next commit past the
    // threshold re-triggers (staleness of the dead rows does not decay).
    std::unique_lock lock(shard.mutex);
    shard.compact_scheduled = false;
    return;
  }
  durability_->compactions.fetch_add(1, std::memory_order_relaxed);
  // Fold the rewrite into fresh snapshots; best-effort (the trim record
  // keeps replay correct even if this checkpoint never lands).
  (void)Checkpoint();
}

size_t Collection::PickInsertShard() const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) return 0;
  // Advisory reads: a racing writer can skew the balance by a row, never
  // the correctness (the chosen shard commits under its own lock).
  for (size_t s = 0; s < num_shards; ++s) {
    if (shards_[s]->approx_free.load(std::memory_order_relaxed) > 0) {
      return s;  // recycle before growing any shard
    }
  }
  size_t best = 0;
  size_t best_rows = std::numeric_limits<size_t>::max();
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t rows =
        shards_[s]->approx_rows.load(std::memory_order_relaxed);
    if (rows < best_rows) {
      best_rows = rows;
      best = s;
    }
  }
  return best;
}

Result<uint32_t> Collection::Upsert(const float* vec, size_t len) {
  if (read_only()) return Status::ReadOnly(read_only_message_);
  if (len != dim_) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(dim_));
  }
  const size_t shard_index = PickInsertShard();
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  const uint32_t local = shard.store->InsertRow(vec, len);
  // In-place index maintenance is fp32-only (quantized slots are static and
  // rebuild from the decode view when staleness hits the threshold).
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Insert(local); !s.ok()) {
        // Self-heal: a structural insert failure leaves that one index
        // missing the id; forcing its staleness to the threshold makes
        // CommitMutationLocked rebuild it over the live rows, restoring
        // coherence without unwinding the committed dataset state.
        slot.staleness = slot.rebuild_threshold;
      }
    }
  }
  const uint32_t global = GlobalId(shard_index, local);
  DBLSH_RETURN_IF_ERROR(
      CommitMutationLocked(shard_index, durability::WalOp::kUpsert, global,
                           vec));
  return global;
}

Result<uint32_t> Collection::Upsert(uint32_t id, const float* vec,
                                    size_t len) {
  if (read_only()) return Status::ReadOnly(read_only_message_);
  if (len != dim_) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(dim_));
  }
  const size_t shard_index = ShardOfId(id);
  const uint32_t local = LocalOfId(id);
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  if (local >= shard.data->rows() || shard.data->IsDeleted(local)) {
    return Status::NotFound("Upsert: id " + std::to_string(id) +
                            " is not a live vector");
  }
  // Fused replace: tombstone + structural erase, then recycle the slot —
  // FloatMatrix's free-list is LIFO, so InsertRow hands the same id back —
  // and re-insert. All under one write transaction: no reader ever sees
  // the id missing.
  DBLSH_RETURN_IF_ERROR(shard.store->EraseRow(local));
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Erase(local); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
        continue;
      }
      // Erased cleanly: the matching Insert below restores the id.
    }
  }
  const uint32_t recycled = shard.store->InsertRow(vec, len);
  assert(recycled == local &&
         "LIFO free-list must hand the slot straight back");
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (slot.staleness >= slot.rebuild_threshold) continue;  // rebuilding
      if (Status s = slot.index->Insert(recycled); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;
      }
    }
  }
  const uint32_t global = GlobalId(shard_index, recycled);
  DBLSH_RETURN_IF_ERROR(
      CommitMutationLocked(shard_index, durability::WalOp::kUpsert, global,
                           vec));
  return global;
}

Status Collection::Delete(uint32_t id) {
  if (read_only()) return Status::ReadOnly(read_only_message_);
  const size_t shard_index = ShardOfId(id);
  const uint32_t local = LocalOfId(id);
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  if (local >= shard.data->rows()) {
    return Status::NotFound("Delete: id " + std::to_string(id) +
                            " was never assigned");
  }
  DBLSH_RETURN_IF_ERROR(
      shard.store->EraseRow(local));  // NotFound when already gone
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Erase(local); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
      }
    }
  }
  return CommitMutationLocked(shard_index, durability::WalOp::kDelete, id,
                              nullptr);
}

int Collection::RouteLocked(const Shard& shard,
                            const std::string& index_name,
                            Status* why) const {
  if (!index_name.empty()) {
    for (size_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.slots[i].name != index_name) continue;
      if (!shard.slots[i].built) {
        *why = Status::InvalidArgument(
            "collection index \"" + index_name +
            "\" is not built yet (collection was empty when it was added)");
        return -1;
      }
      return static_cast<int>(i);
    }
    *why = Status::NotFound("collection has no index named \"" + index_name +
                            "\"");
    return -1;
  }
  // Best-capable routing: the freshest built slot, insertion order as the
  // tie-break (so callers list their preferred method first).
  int best = -1;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    if (!shard.slots[i].built) continue;
    if (best < 0 || shard.slots[i].staleness <
                        shard.slots[static_cast<size_t>(best)].staleness) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    *why = Status::InvalidArgument(
        shard.slots.empty() ? "collection has no indexes; AddIndex first"
                            : "collection has no built index yet; Upsert "
                              "data first");
  }
  return best;
}

Result<QueryResponse> Collection::SearchShard(size_t shard_index,
                                              const float* query,
                                              const QueryRequest& request,
                                              const std::string& index_name,
                                              bool* empty_shard) const {
  const Shard& shard = *shards_[shard_index];
  *empty_shard = false;
  std::shared_lock lock(shard.mutex);
  if (shard.slots.empty()) {
    return Status::InvalidArgument("collection has no indexes; AddIndex "
                                   "first");
  }
  if (!index_name.empty()) {
    // Name resolution first: an unknown name is NotFound even when this
    // shard happens to be empty (slot lists are identical across shards).
    const bool known = std::any_of(
        shard.slots.begin(), shard.slots.end(),
        [&](const Slot& slot) { return slot.name == index_name; });
    if (!known) {
      return Status::NotFound("collection has no index named \"" +
                              index_name + "\"");
    }
  }
  if (shard.data->live_rows() == 0) {
    *empty_shard = true;
    return QueryResponse{};  // nothing to contribute, not an error
  }
  Status why = Status::OK();
  const int route = RouteLocked(shard, index_name, &why);
  if (route < 0) return why;
  const Slot& slot = shard.slots[static_cast<size_t>(route)];

  // Quantized storage: run the index at an inflated k, then re-rank that
  // candidate list with the store's exact distance and keep the caller's
  // k. Truncating to k per shard keeps the fan-out merge exact — the
  // re-ranked list is this shard's true (store-exact) top-k.
  const size_t effective_k = quantized_ ? request.k * rerank_ : request.k;
  auto serve = [&](const QueryRequest& effective) -> QueryResponse {
    QueryResponse response;
    if (slot.index->SupportsConcurrentQueries()) {
      response = slot.index->Search(query, effective);
    } else {
      // Thread-compatible read path: readers of this slot serialize among
      // themselves (writers are already excluded by the shared lock).
      std::lock_guard slot_lock(*slot.query_mutex);
      response = slot.index->Search(query, effective);
    }
    if (quantized_) RerankLocked(shard, query, request.k, &response);
    return response;
  };

  if (request.filter.empty() && effective_k == request.k) {
    return serve(request);
  }
  // The shard's index speaks local ids; rewrite the caller's global-id
  // filter accordingly. Only the filter (and the quantized-storage k
  // inflation) changes — keep the scalar overrides in sync with
  // QueryRequest's field list.
  QueryRequest local;
  local.k = effective_k;
  local.candidate_budget = request.candidate_budget;
  local.r0 = request.r0;
  if (!request.filter.empty()) {
    const QueryFilter* global = &request.filter;  // outlives the fan-out
    local.filter = QueryFilter::Of([this, global, shard_index](uint32_t lid) {
      return global->Admits(GlobalId(shard_index, lid));
    });
  }
  return serve(local);
}

void Collection::RerankLocked(const Shard& shard, const float* query,
                              size_t k, QueryResponse* response) const {
  // Exact pass over the (inflated) candidate list: rescore with the raw
  // fp32 query against each row's stored codes — no query-quantization
  // error — then keep the best k under the same (dist, id) order the
  // TopKHeap uses, so ties resolve identically to an exact index.
  for (Neighbor& neighbor : response->neighbors) {
    neighbor.dist = std::sqrt(
        shard.store->ExactL2Squared(query, neighbor.id));
  }
  std::sort(response->neighbors.begin(), response->neighbors.end());
  if (response->neighbors.size() > k) response->neighbors.resize(k);
}

QueryResponse Collection::MergeShardResponses(
    std::vector<QueryResponse> responses, size_t k) const {
  QueryResponse merged;
  TopKHeap heap(k);
  for (size_t s = 0; s < responses.size(); ++s) {
    for (const Neighbor& neighbor : responses[s].neighbors) {
      // Exact merge: within a shard, local id order equals global id
      // order, so each shard's top-k (local tie-break) contains every
      // global top-k member of that shard; pushing with global ids
      // reproduces the single-shard (dist, id) tie-break exactly.
      heap.Push(neighbor.dist, GlobalId(s, neighbor.id));
    }
    merged.stats.candidates_verified += responses[s].stats.candidates_verified;
    merged.stats.points_accessed += responses[s].stats.points_accessed;
    merged.stats.rounds += responses[s].stats.rounds;
    merged.stats.window_queries += responses[s].stats.window_queries;
  }
  merged.neighbors = heap.TakeSorted();
  return merged;
}

Result<QueryResponse> Collection::Search(const float* query,
                                         const QueryRequest& request,
                                         const std::string& index_name) const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    // Unsharded fast path: identical to the pre-shard Collection (plus the
    // inflate-and-re-rank pass when storage is quantized).
    const Shard& shard = *shards_[0];
    std::shared_lock lock(shard.mutex);
    Status why = Status::OK();
    const int route = RouteLocked(shard, index_name, &why);
    if (route < 0) return why;
    const Slot& slot = shard.slots[static_cast<size_t>(route)];
    QueryRequest effective = request;
    if (quantized_) effective.k = request.k * rerank_;
    QueryResponse response;
    if (slot.index->SupportsConcurrentQueries()) {
      response = slot.index->Search(query, effective);
    } else {
      std::lock_guard slot_lock(*slot.query_mutex);
      response = slot.index->Search(query, effective);
    }
    if (quantized_) RerankLocked(shard, query, request.k, &response);
    return response;
  }

  // Fan out one k-NN task per shard and merge.
  std::vector<QueryResponse> responses(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<uint8_t> empty(num_shards, 0);
  executor_->ParallelFor(num_shards, [&](size_t s) {
    bool empty_shard = false;
    auto got = SearchShard(s, query, request, index_name, &empty_shard);
    if (got.ok()) {
      responses[s] = std::move(got).value();
    } else {
      statuses[s] = got.status();
    }
    empty[s] = empty_shard ? 1 : 0;
  });
  size_t empties = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) return statuses[s];
    empties += empty[s];
  }
  if (empties == num_shards) {
    return Status::InvalidArgument(
        "collection has no built index yet; Upsert data first");
  }
  return MergeShardResponses(std::move(responses), request.k);
}

Result<std::vector<QueryResponse>> Collection::SearchBatch(
    const FloatMatrix& queries, const QueryRequest& request,
    const std::string& index_name, size_t num_threads) const {
  if (!queries.empty() && queries.cols() != dim_) {
    return Status::InvalidArgument(
        "SearchBatch: queries have dimension " +
        std::to_string(queries.cols()) + ", collection serves " +
        std::to_string(dim_));
  }
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    const Shard& shard = *shards_[0];
    std::shared_lock lock(shard.mutex);
    Status why = Status::OK();
    const int route = RouteLocked(shard, index_name, &why);
    if (route < 0) return why;
    const Slot& slot = shard.slots[static_cast<size_t>(route)];
    QueryRequest effective = request;
    if (quantized_) effective.k = request.k * rerank_;
    auto got = [&]() -> Result<std::vector<QueryResponse>> {
      if (slot.index->SupportsConcurrentQueries()) {
        return slot.index->QueryBatch(queries, effective, num_threads);
      }
      std::lock_guard slot_lock(*slot.query_mutex);
      return slot.index->QueryBatch(queries, effective, num_threads);
    }();
    if (!got.ok() || !quantized_) return got;
    std::vector<QueryResponse> responses = std::move(got).value();
    for (size_t q = 0; q < responses.size(); ++q) {
      RerankLocked(shard, queries.row(q), request.k, &responses[q]);
    }
    return responses;
  }

  const size_t q_count = queries.rows();
  if (q_count == 0) return std::vector<QueryResponse>{};
  if (num_threads == 0) num_threads = exec::HardwareConcurrency();
  // Grid fan-out: every (query, shard) cell is an independent task, so a
  // slow shard never stalls the other shards' progress on later queries.
  std::vector<QueryResponse> cells(q_count * num_shards);
  std::vector<Status> statuses(q_count * num_shards, Status::OK());
  std::vector<uint8_t> empty(q_count * num_shards, 0);
  executor_->ParallelFor(
      q_count * num_shards,
      [&](size_t cell) {
        const size_t q = cell / num_shards;
        const size_t s = cell % num_shards;
        bool empty_shard = false;
        auto got =
            SearchShard(s, queries.row(q), request, index_name, &empty_shard);
        if (got.ok()) {
          cells[cell] = std::move(got).value();
        } else {
          statuses[cell] = got.status();
        }
        empty[cell] = empty_shard ? 1 : 0;
      },
      num_threads);

  std::vector<QueryResponse> out;
  out.reserve(q_count);
  for (size_t q = 0; q < q_count; ++q) {
    std::vector<QueryResponse> row;
    row.reserve(num_shards);
    size_t empties = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t cell = q * num_shards + s;
      if (!statuses[cell].ok()) return statuses[cell];
      empties += empty[cell];
      row.push_back(std::move(cells[cell]));
    }
    if (empties == num_shards) {
      return Status::InvalidArgument(
          "collection has no built index yet; Upsert data first");
    }
    out.push_back(MergeShardResponses(std::move(row), request.k));
  }
  return out;
}

size_t Collection::size() const {
  size_t live = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    live += shard->data->live_rows();
  }
  return live;
}

size_t Collection::dim() const { return dim_; }

uint64_t Collection::epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

std::vector<CollectionIndexInfo> Collection::Indexes() const {
  // Shared locks over every shard, ascending (consistent with AddIndex).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  std::vector<CollectionIndexInfo> infos;
  infos.reserve(shards_[0]->slots.size());
  for (size_t i = 0; i < shards_[0]->slots.size(); ++i) {
    const Slot& first = shards_[0]->slots[i];
    CollectionIndexInfo info;
    info.name = first.name;
    info.method = first.index->Name();
    info.supports_updates = first.index->SupportsUpdates();
    info.concurrent_queries = first.index->SupportsConcurrentQueries();
    info.rebuild_threshold = first.rebuild_threshold;
    // Built aggregate: some shard's instance serves, and no shard that has
    // content is left unbuilt. (A slot over an empty shard serves that
    // shard's zero rows exactly; it does not count against the aggregate.)
    bool any_built = false;
    bool all_nonempty_built = true;
    for (const auto& shard : shards_) {
      const Slot& slot = shard->slots[i];
      if (slot.built) any_built = true;
      if (!slot.built && shard->data->live_rows() > 0) {
        all_nonempty_built = false;
      }
      info.staleness = std::max(info.staleness, slot.staleness);
      info.rebuilds += slot.rebuilds;
      info.rebuild_inflight = info.rebuild_inflight || slot.rebuild_scheduled;
      if (info.build_error.empty()) info.build_error = slot.build_error;
    }
    info.built = any_built && all_nonempty_built;
    infos.push_back(std::move(info));
  }
  return infos;
}

const AnnIndex* Collection::GetIndex(const std::string& name,
                                     size_t shard_index) const {
  if (shard_index >= shards_.size()) return nullptr;
  const Shard& shard = *shards_[shard_index];
  std::shared_lock lock(shard.mutex);
  for (const Slot& slot : shard.slots) {
    if (slot.name == name) return slot.index.get();
  }
  return nullptr;
}

FloatMatrix Collection::Snapshot() const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock lock(shards_[0]->mutex);
    // DecodedCopy: the byte-identical matrix copy for fp32, the store's
    // fp32 reconstruction (same ids/tombstones) for quantized backends.
    return shards_[0]->store->DecodedCopy();
  }
  // Consistent cut: shared locks over every shard while re-assembling the
  // global id space (mutations are single-shard, so this is the same
  // guarantee a fan-out search sees, made simultaneous).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(num_shards);
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  size_t rows = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t shard_rows = shards_[s]->data->rows();
    if (shard_rows > 0) {
      rows = std::max(rows, (shard_rows - 1) * num_shards + s + 1);
    }
  }
  FloatMatrix out(rows, dim_);
  for (size_t g = 0; g < rows; ++g) {
    const Shard& shard = *shards_[g % num_shards];
    const uint32_t local = LocalOfId(static_cast<uint32_t>(g));
    if (local < shard.data->rows()) {
      // DecodeRow instead of a raw row copy: quantized stores hold codes,
      // not fp32 payload (for fp32 this is the same copy as before).
      shard.store->DecodeRow(local, out.mutable_row(g));
    }
  }
  for (size_t g = 0; g < rows; ++g) {
    const Shard& shard = *shards_[g % num_shards];
    const uint32_t local = LocalOfId(static_cast<uint32_t>(g));
    // Ids past a shard's frontier were never assigned; report them (and
    // genuine tombstones) as erased so oracle scans skip them.
    if (local >= shard.data->rows() || shard.data->IsDeleted(local)) {
      Status erased = out.EraseRow(g);
      assert(erased.ok());
      (void)erased;
    }
  }
  return out;
}

CollectionStorageInfo Collection::Storage() const {
  // Shared locks over every shard, ascending (consistent with Indexes()).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  CollectionStorageInfo info;
  info.kind = StorageKindName(storage_);
  info.bytes_per_vector = shards_[0]->store->bytes_per_vector();
  info.rerank = quantized_ ? rerank_ : 0;
  info.shard_resident_bytes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const size_t bytes = shard->store->resident_bytes();
    info.shard_resident_bytes.push_back(bytes);
    info.resident_bytes += bytes;
  }
  return info;
}

}  // namespace dblsh
