#ifndef DBLSH_CORE_ANN_INDEX_H_
#define DBLSH_CORE_ANN_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/query.h"
#include "dataset/float_matrix.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace dblsh {

/// Common interface implemented by DB-LSH and every baseline so the
/// evaluation harness and the benches can sweep methods uniformly.
///
/// Lifecycle: construct (usually via IndexFactory::Make("Name,key=value")),
/// Build() over a dataset, then answer queries through Search() /
/// QueryBatch(). The narrow `Query(ptr, k, stats*)` virtual remains as the
/// per-method implementation hook; new callers use the request/response
/// API, which folds QueryStats into the result.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Method name as used in the paper's tables, e.g. "DB-LSH".
  virtual std::string Name() const = 0;

  /// Builds the index over `data`, which must outlive the index.
  virtual Status Build(const FloatMatrix* data) = 0;

  /// Returns (up to) the k approximate nearest neighbors of `query`,
  /// ascending by distance. `stats`, if non-null, receives per-query
  /// instrumentation. Implementation hook — prefer Search().
  virtual std::vector<Neighbor> Query(const float* query, size_t k,
                                      QueryStats* stats = nullptr) const = 0;

  /// Answers one query described by `request`. The base implementation
  /// forwards to Query(query, request.k); methods with per-query knobs
  /// (DB-LSH's candidate budget / starting radius) override it to honor
  /// the request's overrides.
  virtual QueryResponse Search(const float* query,
                               const QueryRequest& request) const;

  /// Answers every row of `queries` under one request; responses are in
  /// query order. The base implementation fans the rows out over
  /// `num_threads` workers when the index declares its read path
  /// thread-safe (SupportsConcurrentQueries) and degrades to a sequential
  /// loop otherwise, so it is always safe to call. `num_threads = 0` uses
  /// the hardware concurrency; pass 1 when timing per-query latency.
  virtual std::vector<QueryResponse> QueryBatch(const FloatMatrix& queries,
                                                const QueryRequest& request,
                                                size_t num_threads = 0) const;

  /// True when concurrent Search() calls on one built index are safe. The
  /// default is false: most LSH methods (DB-LSH's default-scratch Search
  /// included) keep epoch-stamped per-query scratch in `mutable` members,
  /// making them thread-compatible but not thread-safe. LinearScan, whose
  /// read path is reentrant, opts in. For parallel DB-LSH queries use
  /// QueryBatch, which it overrides with one QueryScratch per worker.
  virtual bool SupportsConcurrentQueries() const { return false; }

  /// Number of hash functions held, the paper's proxy for index size
  /// (IndexSize = n x #HashFunctions for all methods except LSB-Forest).
  virtual size_t NumHashFunctions() const = 0;
};

namespace detail {

/// Shared worker-pool loop behind the QueryBatch implementations: runs
/// `work(i)` for every i in [0, count) across `num_threads` workers, where
/// `make_worker()` is called once per worker so each can capture its own
/// per-thread state (e.g. a DbLsh::QueryScratch). `num_threads <= 1` runs
/// inline.
void FanOut(size_t count, size_t num_threads,
            const std::function<std::function<void(size_t)>()>& make_worker);

}  // namespace detail

}  // namespace dblsh

#endif  // DBLSH_CORE_ANN_INDEX_H_
