#ifndef DBLSH_CORE_ANN_INDEX_H_
#define DBLSH_CORE_ANN_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/query.h"
#include "dataset/float_matrix.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace dblsh {

/// Common interface implemented by DB-LSH and every baseline so the
/// evaluation harness and the benches can sweep methods uniformly.
///
/// Lifecycle: construct (usually via IndexFactory::Make("Name,key=value")),
/// Build() over a dataset, then answer queries through Search() /
/// QueryBatch(). The narrow `Query(ptr, k, stats*)` virtual remains as the
/// per-method implementation hook; new callers use the request/response
/// API, which folds QueryStats into the result.
///
/// Serving note: AnnIndex is the per-method plumbing layer. Applications
/// that own a mutable dataset, want several methods over it, need
/// concurrent reads under writes, or want the update protocol sequenced
/// for them should use dblsh::Collection (core/collection.h) — the façade
/// that wraps any number of AnnIndex instances behind one transactional
/// Upsert/Delete/Search surface. The raw Insert()/Erase() protocol below
/// remains available for single-index, single-threaded callers.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Method name as used in the paper's tables, e.g. "DB-LSH".
  virtual std::string Name() const = 0;

  /// Builds the index over `data`, which must outlive the index.
  virtual Status Build(const FloatMatrix* data) = 0;

  /// Returns (up to) the k approximate nearest neighbors of `query`,
  /// ascending by distance. `stats`, if non-null, receives per-query
  /// instrumentation. Implementation hook — prefer Search().
  virtual std::vector<Neighbor> Query(const float* query, size_t k,
                                      QueryStats* stats = nullptr) const = 0;

  /// Answers one query described by `request`. The base implementation
  /// forwards to Query(query, request.k); methods with per-query knobs
  /// (DB-LSH's candidate budget / starting radius) override it to honor
  /// the request's overrides. Every implementation (base and overrides)
  /// installs `request.filter` into the shared verification path for the
  /// duration of the call, so filtered search works identically for all
  /// methods — overriders must do the same (see core/verify.h's
  /// ScopedQueryFilter).
  virtual QueryResponse Search(const float* query,
                               const QueryRequest& request) const;

  /// Answers every row of `queries` under one request; responses are in
  /// query order. The base implementation fans the rows out over
  /// `num_threads` workers when the index declares its read path
  /// thread-safe (SupportsConcurrentQueries) and degrades to a sequential
  /// loop otherwise, so it is always safe to call. `num_threads = 0` uses
  /// the hardware concurrency; pass 1 when timing per-query latency.
  virtual std::vector<QueryResponse> QueryBatch(const FloatMatrix& queries,
                                                const QueryRequest& request,
                                                size_t num_threads = 0) const;

  /// True when concurrent Search() calls on one built index are safe. The
  /// default is false: most LSH baselines keep epoch-stamped per-query
  /// scratch in `mutable` members, making them thread-compatible but not
  /// thread-safe. LinearScan (reentrant read path) and DB-LSH/FB-LSH
  /// (thread-local query scratch) opt in, which is what lets a Collection
  /// serve them to many reader threads under one shared lock; Collection
  /// serializes queries to the remaining methods per index.
  virtual bool SupportsConcurrentQueries() const { return false; }

  /// True when this built index implements Insert()/Erase() natively, i.e.
  /// its structures can absorb point mutations without a rebuild. Methods
  /// whose structures are R-trees/B+-trees (DB-LSH, QALSH, R2LSH, VHP) or
  /// that keep a scanned delta region (SRS) opt in; purely static layouts
  /// return false and their Insert()/Erase() return Unimplemented.
  ///
  /// Erasure note: even for SupportsUpdates() == false methods, tombstoning
  /// a row in the backing FloatMatrix (FloatMatrix::EraseRow) guarantees
  /// the id never appears in results — the shared verification path filters
  /// it. What Unimplemented means is only that the *structure* cannot be
  /// updated in place (inserted points stay invisible, erased slots cannot
  /// be recycled safely) and a rebuild is required to resync.
  virtual bool SupportsUpdates() const { return false; }

  /// Makes row `id` of the backing dataset visible to this index's queries.
  ///
  /// Update protocol (one mutable dataset shared by any number of indexes):
  ///   1. uint32_t id = data.InsertRow(vec, dim);   // storage + id
  ///   2. for every built index: index->Insert(id); // structures
  /// Preconditions: the index is built, `id` is a live row, and `id` is not
  /// currently held by this index's structures (fresh append, or a recycled
  /// slot this index Erase()d first). Appended ids must arrive densely (in
  /// increasing order without gaps), which InsertRow guarantees.
  /// Returns Unimplemented when SupportsUpdates() is false, InvalidArgument
  /// on protocol violations. Not thread-safe with concurrent queries.
  virtual Status Insert(uint32_t id);

  /// Repoints the built index's dataset reads at `data`, which must hold
  /// exactly the same logical content (row count, values, tombstone set) as
  /// the matrix the index was built over — only the storage moved. This is
  /// the swap-in hook for Collection's background rebuilds: a replacement
  /// index is built over a snapshot copy off the write lock, then rebound
  /// to the live matrix under it once the shard is verified unchanged.
  /// Every registered method implements it (the verification path reads
  /// rows through one stored matrix pointer); the default returns
  /// Unimplemented, which makes the Collection fall back to an inline
  /// rebuild for exotic external indexes. Not thread-safe with concurrent
  /// queries — callers hold the exclusive lock.
  virtual Status RebindData(const FloatMatrix* data);

  /// Removes row `id` from this index's structures so its slot can later be
  /// recycled by FloatMatrix::InsertRow.
  ///
  /// Update protocol:
  ///   1. data.EraseRow(id);                        // tombstone: id stops
  ///      // surfacing from every index sharing `data`, updatable or not
  ///   2. for every built index: index->Erase(id);  // structural removal
  /// Step 2 must happen before the slot is reused — stale structure entries
  /// for a *recycled* slot would resurface under the new vector's identity.
  /// Returns Unimplemented when SupportsUpdates() is false, NotFound when
  /// the id is not held. Not thread-safe with concurrent queries.
  virtual Status Erase(uint32_t id);

  /// Number of hash functions held, the paper's proxy for index size
  /// (IndexSize = n x #HashFunctions for all methods except LSB-Forest).
  virtual size_t NumHashFunctions() const = 0;
};

namespace detail {

/// Shared precondition check for the RebindData implementations: the index
/// must be built (`current` non-null) and `target` must match its shape.
/// Content equality is the caller's contract — it is what makes the
/// pointer swap sound — and is not re-verified here.
Status ValidateRebind(const std::string& method, const FloatMatrix* current,
                      const FloatMatrix* target);

/// Shared fan-out behind the QueryBatch implementations: runs `work(i)` for
/// every i in [0, count) at a parallelism of `num_threads`, where
/// `make_worker()` is called once per participating thread so each can
/// capture its own per-thread state (e.g. a DbLsh::QueryScratch).
/// `num_threads <= 1` runs inline. Since the executor refactor this is a
/// thin shim over exec::TaskExecutor::Default().ParallelForWorkers — no
/// code outside src/exec/ spawns threads.
void FanOut(size_t count, size_t num_threads,
            const std::function<std::function<void(size_t)>()>& make_worker);

}  // namespace detail

}  // namespace dblsh

#endif  // DBLSH_CORE_ANN_INDEX_H_
