#ifndef DBLSH_CORE_ANN_INDEX_H_
#define DBLSH_CORE_ANN_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/float_matrix.h"
#include "util/status.h"
#include "util/top_k_heap.h"

namespace dblsh {

/// Per-query instrumentation filled in by every index. The evaluation
/// harness aggregates these to explain *why* a method is fast or slow
/// (candidate counts are the LSH cost model's main term).
struct QueryStats {
  size_t candidates_verified = 0;  ///< exact distance computations
  size_t points_accessed = 0;      ///< index entries touched (incl. repeats)
  size_t rounds = 0;               ///< (r,c)-NN rounds / radius expansions
  size_t window_queries = 0;       ///< index probes issued
};

/// Common interface implemented by DB-LSH and every baseline so the
/// evaluation harness and the benches can sweep methods uniformly.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Method name as used in the paper's tables, e.g. "DB-LSH".
  virtual std::string Name() const = 0;

  /// Builds the index over `data`, which must outlive the index.
  virtual Status Build(const FloatMatrix* data) = 0;

  /// Returns (up to) the k approximate nearest neighbors of `query`,
  /// ascending by distance. `stats`, if non-null, receives per-query
  /// instrumentation.
  virtual std::vector<Neighbor> Query(const float* query, size_t k,
                                      QueryStats* stats = nullptr) const = 0;

  /// Number of hash functions held, the paper's proxy for index size
  /// (IndexSize = n x #HashFunctions for all methods except LSB-Forest).
  virtual size_t NumHashFunctions() const = 0;
};

}  // namespace dblsh

#endif  // DBLSH_CORE_ANN_INDEX_H_
