#include "core/ann_index.h"

#include <algorithm>

#include "core/verify.h"
#include "exec/task_executor.h"

namespace dblsh {

namespace detail {

void FanOut(size_t count, size_t num_threads,
            const std::function<std::function<void(size_t)>()>& make_worker) {
  if (count == 0) return;
  if (num_threads <= 1) {
    const std::function<void(size_t)> work = make_worker();
    for (size_t i = 0; i < count; ++i) work(i);
    return;
  }
  exec::TaskExecutor::Default().ParallelForWorkers(count, num_threads,
                                                   make_worker);
}

Status ValidateRebind(const std::string& method, const FloatMatrix* current,
                      const FloatMatrix* target) {
  if (current == nullptr) {
    return Status::InvalidArgument(method +
                                   ": RebindData requires a built index");
  }
  if (target == nullptr) {
    return Status::InvalidArgument(method + ": RebindData target is null");
  }
  if (target->rows() != current->rows() ||
      target->cols() != current->cols()) {
    return Status::InvalidArgument(
        method + ": RebindData target shape " +
        std::to_string(target->rows()) + "x" +
        std::to_string(target->cols()) + " does not match the built " +
        std::to_string(current->rows()) + "x" +
        std::to_string(current->cols()));
  }
  return Status::OK();
}

}  // namespace detail

Status AnnIndex::Insert(uint32_t /*id*/) {
  return Status::Unimplemented(
      Name() +
      " does not support dynamic updates (SupportsUpdates() == false); "
      "rebuild the index to absorb new points");
}

Status AnnIndex::RebindData(const FloatMatrix* /*data*/) {
  return Status::Unimplemented(
      Name() +
      " does not support rebinding its dataset reference; rebuild over the "
      "target matrix instead");
}

Status AnnIndex::Erase(uint32_t /*id*/) {
  return Status::Unimplemented(
      Name() +
      " does not support dynamic updates (SupportsUpdates() == false); "
      "tombstone the row with FloatMatrix::EraseRow — the shared "
      "verification path already keeps it out of this index's results — "
      "and rebuild before recycling the slot");
}

QueryResponse AnnIndex::Search(const float* query,
                               const QueryRequest& request) const {
  QueryResponse response;
  // Push the request's filter down into the shared verification path for
  // the duration of the per-method Query() hook (thread-local, so batched
  // workers each install their own).
  ScopedQueryFilter filter_scope(&request.filter);
  response.neighbors = Query(query, request.k, &response.stats);
  return response;
}

std::vector<QueryResponse> AnnIndex::QueryBatch(const FloatMatrix& queries,
                                                const QueryRequest& request,
                                                size_t num_threads) const {
  const size_t q_count = queries.rows();
  std::vector<QueryResponse> responses(q_count);
  if (q_count == 0) return responses;

  if (!SupportsConcurrentQueries()) {
    num_threads = 1;
  } else if (num_threads == 0) {
    num_threads = exec::HardwareConcurrency();
  }
  num_threads = std::min(num_threads, q_count);

  detail::FanOut(q_count, num_threads, [&]() {
    return [this, &queries, &request, &responses](size_t q) {
      responses[q] = Search(queries.row(q), request);
    };
  });
  return responses;
}

}  // namespace dblsh
