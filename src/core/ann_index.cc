#include "core/ann_index.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/verify.h"

namespace dblsh {

namespace detail {

void FanOut(size_t count, size_t num_threads,
            const std::function<std::function<void(size_t)>()>& make_worker) {
  std::atomic<size_t> next{0};
  auto run = [&]() {
    const std::function<void(size_t)> work = make_worker();
    for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      work(i);
    }
  };
  if (num_threads <= 1) {
    run();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(run);
  for (auto& thread : threads) thread.join();
}

}  // namespace detail

Status AnnIndex::Insert(uint32_t /*id*/) {
  return Status::Unimplemented(
      Name() +
      " does not support dynamic updates (SupportsUpdates() == false); "
      "rebuild the index to absorb new points");
}

Status AnnIndex::Erase(uint32_t /*id*/) {
  return Status::Unimplemented(
      Name() +
      " does not support dynamic updates (SupportsUpdates() == false); "
      "tombstone the row with FloatMatrix::EraseRow — the shared "
      "verification path already keeps it out of this index's results — "
      "and rebuild before recycling the slot");
}

QueryResponse AnnIndex::Search(const float* query,
                               const QueryRequest& request) const {
  QueryResponse response;
  // Push the request's filter down into the shared verification path for
  // the duration of the per-method Query() hook (thread-local, so batched
  // workers each install their own).
  ScopedQueryFilter filter_scope(&request.filter);
  response.neighbors = Query(query, request.k, &response.stats);
  return response;
}

std::vector<QueryResponse> AnnIndex::QueryBatch(const FloatMatrix& queries,
                                                const QueryRequest& request,
                                                size_t num_threads) const {
  const size_t q_count = queries.rows();
  std::vector<QueryResponse> responses(q_count);
  if (q_count == 0) return responses;

  if (!SupportsConcurrentQueries()) {
    num_threads = 1;
  } else if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, q_count);

  detail::FanOut(q_count, num_threads, [&]() {
    return [this, &queries, &request, &responses](size_t q) {
      responses[q] = Search(queries.row(q), request);
    };
  });
  return responses;
}

}  // namespace dblsh
