// Persistence for DbLsh. Format (host-endian, version 4):
//   magic "DBLSHIDX" | u32 version | u8 storage tag (StorageKind)
//   u64 n | u64 dim | u64 data_checksum (FNV-1a; see below)
//   sq8 only: dim f32 scales | dim f32 offsets (the store's quantization
//   parameters, so LoadStore can re-encode the original dataset exactly)
//   pq only (version >= 4): u32 m | 256*dim f32 codebooks (the trained
//   sub-quantizer centroids, so LoadStore can re-encode exactly)
//   f64 c | f64 w0 | u64 k | u64 l | u64 t | u64 seed | u8 bucketing
//   u8 backend | f64 auto_r0 | f64 early_stop_slack
//   directions matrix (u64 rows, u64 cols, floats)
//   grid offsets (u64 count, floats)
//   l projected matrices (u64 rows, u64 cols, floats each)
//   tombstones: u64 count | u32 ids in erasure order (the free-list stack)
// Version 3 files are identical minus the pq storage variant; version 2
// files additionally lack the storage tag and quantization parameters
// (implicitly fp32). Both still load.
// The R*-trees are rebuilt by STR bulk loading at load time: they are a
// deterministic function of the projected matrices, bulk loading is fast
// (the paper's own construction path), and the file stays portable.
// The checksum pins the index to the exact dataset bytes it was saved
// over: for fp32 storage it covers the raw float payload; for sq8/pq the
// fp32 payload is released, so it covers the store's u8 codes instead —
// both are stable across erase-only mutations (EraseRow touches neither).
// A wrong/reordered/edited dataset is rejected with InvalidArgument
// instead of silently serving wrong neighbors. Tombstones are re-applied
// to the caller's dataset on load, restoring the free-list in its
// original order so InsertRow keeps recycling deterministically.
#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/db_lsh.h"

namespace dblsh {

namespace {

constexpr char kMagic[8] = {'D', 'B', 'L', 'S', 'H', 'I', 'D', 'X'};
constexpr uint32_t kVersion = 4;
constexpr uint32_t kVersionSq8 = 3;       // pre-PQ format (fp32/sq8 only)
constexpr uint32_t kVersionFp32Only = 2;  // pre-VectorStore format

// FNV-1a: cheap, order-sensitive, byte-exact.
uint64_t Fnv1a(const unsigned char* bytes, size_t count) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < count; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Checksum over the matrix's raw float payload (fp32 storage): stable
// across erase-only mutations (EraseRow never touches row bytes).
uint64_t DataChecksum(const FloatMatrix& m) {
  return Fnv1a(reinterpret_cast<const unsigned char*>(m.data().data()),
               m.data().size() * sizeof(float));
}

// Checksum over the store's u8 codes (sq8/pq storage, payload released).
uint64_t CodesChecksum(const Sq8Store& store) {
  return Fnv1a(store.codes().data(), store.codes().size());
}

uint64_t CodesChecksum(const PqStore& store) {
  return Fnv1a(store.codes().data(), store.codes().size());
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  return static_cast<bool>(
      in.read(reinterpret_cast<char*>(value), sizeof(T)));
}

void WriteMatrix(std::ofstream& out, const FloatMatrix& m) {
  WritePod<uint64_t>(out, m.rows());
  WritePod<uint64_t>(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.data().size() * sizeof(float)));
}

Result<FloatMatrix> ReadMatrix(std::ifstream& in, const std::string& what) {
  uint64_t rows = 0, cols = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols)) {
    return Status::Corruption("truncated " + what + " header");
  }
  if (rows == 0 || cols == 0 || rows > (1ULL << 40) / (cols + 1)) {
    return Status::Corruption("implausible " + what + " shape");
  }
  std::vector<float> values(rows * cols);
  if (!in.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(values.size() *
                                            sizeof(float)))) {
    return Status::Corruption("truncated " + what + " payload");
  }
  return FloatMatrix(rows, cols, std::move(values));
}

/// Everything up to (and including) the storage-dependent prefix: format
/// version, storage tag, dataset shape, checksum, and — for sq8/pq — the
/// saved quantization parameters.
struct StorageHeader {
  uint32_t version = 0;
  StorageKind storage = StorageKind::kFp32;
  uint64_t n = 0;
  uint64_t dim = 0;
  uint64_t checksum = 0;
  std::vector<float> scale;      // sq8 only, dim entries
  std::vector<float> offset;     // sq8 only, dim entries
  uint32_t pq_m = 0;             // pq only
  std::vector<float> codebooks;  // pq only, 256*dim entries
};

Status ReadStorageHeader(std::ifstream& in, const std::string& path,
                         StorageHeader* header) {
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not a DB-LSH index file");
  }
  if (!ReadPod(in, &header->version) ||
      (header->version != kVersion && header->version != kVersionSq8 &&
       header->version != kVersionFp32Only)) {
    return Status::Corruption(path + ": unsupported index version");
  }
  if (header->version >= kVersionSq8) {
    uint8_t tag = 0;
    if (!ReadPod(in, &tag)) {
      return Status::Corruption(path + ": truncated storage tag");
    }
    if (tag > static_cast<uint8_t>(StorageKind::kPq)) {
      return Status::Corruption(path + ": unknown storage backend tag");
    }
    if (tag == static_cast<uint8_t>(StorageKind::kPq) &&
        header->version < kVersion) {
      return Status::Corruption(path +
                                ": pq storage requires format version 4");
    }
    header->storage = static_cast<StorageKind>(tag);
  }
  if (!ReadPod(in, &header->n) || !ReadPod(in, &header->dim) ||
      !ReadPod(in, &header->checksum)) {
    return Status::Corruption(path + ": truncated header");
  }
  if (header->storage == StorageKind::kSq8) {
    if (header->dim == 0 || header->dim > (1ULL << 24)) {
      return Status::Corruption(path + ": implausible dimensionality");
    }
    header->scale.resize(header->dim);
    header->offset.resize(header->dim);
    const std::streamsize bytes =
        static_cast<std::streamsize>(header->dim * sizeof(float));
    if (!in.read(reinterpret_cast<char*>(header->scale.data()), bytes) ||
        !in.read(reinterpret_cast<char*>(header->offset.data()), bytes)) {
      return Status::Corruption(path + ": truncated quantization parameters");
    }
  } else if (header->storage == StorageKind::kPq) {
    if (header->dim == 0 || header->dim > (1ULL << 24)) {
      return Status::Corruption(path + ": implausible dimensionality");
    }
    if (!ReadPod(in, &header->pq_m) || header->pq_m == 0 ||
        header->pq_m > header->dim) {
      return Status::Corruption(path + ": invalid pq subspace count");
    }
    header->codebooks.resize(256 * header->dim);
    if (!in.read(reinterpret_cast<char*>(header->codebooks.data()),
                 static_cast<std::streamsize>(header->codebooks.size() *
                                              sizeof(float)))) {
      return Status::Corruption(path + ": truncated pq codebooks");
    }
  }
  return Status::OK();
}

}  // namespace

Status DbLsh::Save(const std::string& path) const {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Save() requires a built index");
  }
  // Storage backend of the dataset: a quantized store bound to the matrix
  // means the fp32 payload is released — checksum the codes and persist
  // the quantization parameters so LoadStore can reconstruct the store.
  const Sq8Store* sq8 = nullptr;
  const PqStore* pq = nullptr;
  StorageKind tag = StorageKind::kFp32;
  if (data_->store() != nullptr) {
    tag = data_->store()->storage_kind();
    if (tag == StorageKind::kSq8) {
      sq8 = static_cast<const Sq8Store*>(data_->store());
    } else if (tag == StorageKind::kPq) {
      pq = static_cast<const PqStore*>(data_->store());
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod<uint8_t>(out, static_cast<uint8_t>(tag));
  WritePod<uint64_t>(out, data_->rows());
  WritePod<uint64_t>(out, data_->cols());
  WritePod<uint64_t>(out, sq8 != nullptr  ? CodesChecksum(*sq8)
                          : pq != nullptr ? CodesChecksum(*pq)
                                          : DataChecksum(*data_));
  if (sq8 != nullptr) {
    const std::streamsize bytes =
        static_cast<std::streamsize>(data_->cols() * sizeof(float));
    out.write(reinterpret_cast<const char*>(sq8->scales().data()), bytes);
    out.write(reinterpret_cast<const char*>(sq8->offsets().data()), bytes);
  } else if (pq != nullptr) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(pq->m()));
    out.write(reinterpret_cast<const char*>(pq->codebooks().data()),
              static_cast<std::streamsize>(pq->codebooks().size() *
                                           sizeof(float)));
  }
  WritePod<double>(out, params_.c);
  WritePod<double>(out, params_.w0);
  WritePod<uint64_t>(out, params_.k);
  WritePod<uint64_t>(out, params_.l);
  WritePod<uint64_t>(out, params_.t);
  WritePod<uint64_t>(out, params_.seed);
  WritePod<uint8_t>(out, static_cast<uint8_t>(params_.bucketing));
  WritePod<uint8_t>(out, static_cast<uint8_t>(params_.backend));
  WritePod<double>(out, auto_r0_);
  WritePod<double>(out, params_.early_stop_slack);
  WriteMatrix(out, bank_->directions());
  WritePod<uint64_t>(out, grid_offsets_.size());
  out.write(reinterpret_cast<const char*>(grid_offsets_.data()),
            static_cast<std::streamsize>(grid_offsets_.size() *
                                         sizeof(float)));
  for (const FloatMatrix& space : projected_) WriteMatrix(out, space);
  const std::vector<uint32_t>& tombstones = data_->free_slots();
  WritePod<uint64_t>(out, tombstones.size());
  out.write(reinterpret_cast<const char*>(tombstones.data()),
            static_cast<std::streamsize>(tombstones.size() *
                                         sizeof(uint32_t)));
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<DbLsh> DbLsh::LoadIndexBody(std::ifstream& in,
                                   const std::string& path, uint64_t n,
                                   uint64_t dim, FloatMatrix* data,
                                   VectorStore* store) {
  DbLshParams params;
  uint64_t k = 0, l = 0, t = 0, seed = 0;
  uint8_t bucketing = 0, backend = 0;
  double auto_r0 = 1.0;
  if (!ReadPod(in, &params.c) || !ReadPod(in, &params.w0) ||
      !ReadPod(in, &k) || !ReadPod(in, &l) || !ReadPod(in, &t) ||
      !ReadPod(in, &seed) || !ReadPod(in, &bucketing) ||
      !ReadPod(in, &backend) || !ReadPod(in, &auto_r0) ||
      !ReadPod(in, &params.early_stop_slack)) {
    return Status::Corruption(path + ": truncated parameters");
  }
  params.k = k;
  params.l = l;
  params.t = t;
  params.seed = seed;
  params.bucketing = static_cast<BucketingMode>(bucketing);
  params.backend = static_cast<IndexBackend>(backend);
  if (params.l == 0 || params.k == 0 || params.c <= 1.0 ||
      params.w0 <= 0.0) {
    return Status::Corruption(path + ": invalid stored parameters");
  }

  auto directions = ReadMatrix(in, "projection directions");
  if (!directions.ok()) return directions.status();
  if (directions.value().rows() != params.l * params.k ||
      directions.value().cols() != dim) {
    return Status::Corruption(path + ": direction matrix shape mismatch");
  }

  uint64_t offset_count = 0;
  if (!ReadPod(in, &offset_count) || offset_count != params.l * params.k) {
    return Status::Corruption(path + ": grid offset count mismatch");
  }
  std::vector<float> grid_offsets(offset_count);
  if (!in.read(reinterpret_cast<char*>(grid_offsets.data()),
               static_cast<std::streamsize>(offset_count * sizeof(float)))) {
    return Status::Corruption(path + ": truncated grid offsets");
  }

  DbLsh index(params);
  index.data_ = data;
  index.auto_r0_ = auto_r0;
  index.bank_ =
      std::make_unique<lsh::ProjectionBank>(std::move(directions).value());
  index.grid_offsets_ = std::move(grid_offsets);
  index.projected_.reserve(params.l);
  for (size_t i = 0; i < params.l; ++i) {
    auto space = ReadMatrix(in, "projected space");
    if (!space.ok()) return space.status();
    if (space.value().rows() != n || space.value().cols() != params.k) {
      return Status::Corruption(path + ": projected space shape mismatch");
    }
    index.projected_.push_back(std::move(space).value());
  }
  uint64_t tombstone_count = 0;
  if (!ReadPod(in, &tombstone_count) || tombstone_count > n) {
    return Status::Corruption(path + ": truncated/implausible tombstones");
  }
  std::vector<uint32_t> tombstones(tombstone_count);
  if (tombstone_count > 0 &&
      !in.read(reinterpret_cast<char*>(tombstones.data()),
               static_cast<std::streamsize>(tombstone_count *
                                            sizeof(uint32_t)))) {
    return Status::Corruption(path + ": truncated tombstone ids");
  }
  // Re-apply in erasure order so the dataset's free-list stack matches the
  // saved state exactly (InsertRow recycles the same slots in the same
  // order as it would have before the save).
  for (uint32_t id : tombstones) {
    if (id >= n) return Status::Corruption(path + ": tombstone id range");
    if (!data->IsDeleted(id)) {
      DBLSH_RETURN_IF_ERROR(store != nullptr ? store->EraseRow(id)
                                             : data->EraseRow(id));
    }
  }
  if (params.backend == IndexBackend::kRStarTree) {
    // Bulk load live rows only: tombstoned slots stay out of the trees, so
    // post-load Erase/InsertRow slot recycling behaves as before the save.
    std::vector<uint32_t> live;
    live.reserve(data->live_rows());
    for (uint32_t id = 0; id < n; ++id) {
      if (!data->IsDeleted(id)) live.push_back(id);
    }
    index.trees_.reserve(params.l);
    for (size_t i = 0; i < params.l; ++i) {
      index.trees_.emplace_back(&index.projected_[i], params.rtree_options);
      DBLSH_RETURN_IF_ERROR(index.trees_.back().BulkLoad(live));
    }
  } else {
    index.kd_trees_.reserve(params.l);
    for (size_t i = 0; i < params.l; ++i) {
      index.kd_trees_.push_back(
          std::make_unique<kdtree::KdTree>(&index.projected_[i]));
    }
  }
  return index;
}

namespace {

Status CheckShape(const std::string& path, const StorageHeader& header,
                  const FloatMatrix& data) {
  if (header.n != data.rows() || header.dim != data.cols()) {
    return Status::InvalidArgument(
        path + ": index was built over a different dataset (" +
        std::to_string(header.n) + "x" + std::to_string(header.dim) +
        " vs " + std::to_string(data.rows()) + "x" +
        std::to_string(data.cols()) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<DbLsh> DbLsh::Load(const std::string& path, FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("Load() requires the backing dataset");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  StorageHeader header;
  DBLSH_RETURN_IF_ERROR(ReadStorageHeader(in, path, &header));
  if (header.storage != StorageKind::kFp32) {
    return Status::InvalidArgument(
        path + ": index was saved over " +
        std::string(StorageKindName(header.storage)) +
        " storage; restore its store with DbLsh::LoadStore and use the "
        "Load(path, VectorStore*) overload");
  }
  DBLSH_RETURN_IF_ERROR(CheckShape(path, header, *data));
  if (header.checksum != DataChecksum(*data)) {
    return Status::InvalidArgument(
        path + ": dataset content checksum mismatch — the provided data is "
               "not the dataset this index was saved over");
  }
  return LoadIndexBody(in, path, header.n, header.dim, data, nullptr);
}

Result<std::unique_ptr<VectorStore>> DbLsh::LoadStore(
    const std::string& path, std::unique_ptr<FloatMatrix> data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("LoadStore() requires the backing dataset");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  StorageHeader header;
  DBLSH_RETURN_IF_ERROR(ReadStorageHeader(in, path, &header));
  DBLSH_RETURN_IF_ERROR(CheckShape(path, header, *data));
  if (header.storage == StorageKind::kFp32) {
    if (header.checksum != DataChecksum(*data)) {
      return Status::InvalidArgument(
          path + ": dataset content checksum mismatch — the provided data "
                 "is not the dataset this index was saved over");
    }
    return std::unique_ptr<VectorStore>(
        std::make_unique<Fp32Store>(std::move(data)));
  }
  if (header.storage == StorageKind::kPq) {
    // pq: re-encode against the *saved* codebooks (not re-training), then
    // require the resulting codes to be byte-identical to the saved state.
    auto store = std::make_unique<PqStore>(std::move(data), header.pq_m,
                                           std::move(header.codebooks));
    if (header.checksum != CodesChecksum(*store)) {
      return Status::InvalidArgument(
          path + ": quantized code checksum mismatch — the provided data "
                 "is not the dataset this index was saved over");
    }
    return std::unique_ptr<VectorStore>(std::move(store));
  }
  // sq8: re-encode with the *saved* parameters (not re-training, which
  // would drift if the dataset was mutated after the store trained), then
  // require the resulting codes to be byte-identical to the saved state.
  auto store = std::make_unique<Sq8Store>(std::move(data), header.scale,
                                          header.offset);
  if (header.checksum != CodesChecksum(*store)) {
    return Status::InvalidArgument(
        path + ": quantized code checksum mismatch — the provided data is "
               "not the dataset this index was saved over");
  }
  return std::unique_ptr<VectorStore>(std::move(store));
}

Result<DbLsh> DbLsh::Load(const std::string& path, VectorStore* store) {
  if (store == nullptr || store->matrix().rows() == 0) {
    return Status::InvalidArgument("Load() requires the backing store");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  StorageHeader header;
  DBLSH_RETURN_IF_ERROR(ReadStorageHeader(in, path, &header));
  if (header.storage != store->storage_kind()) {
    return Status::InvalidArgument(
        path + ": index was saved over " +
        std::string(StorageKindName(header.storage)) +
        " storage but the provided store is " + store->kind_name());
  }
  FloatMatrix& data = store->matrix();
  DBLSH_RETURN_IF_ERROR(CheckShape(path, header, data));
  if (header.storage == StorageKind::kSq8) {
    const auto& sq8 = *static_cast<const Sq8Store*>(store);
    if (header.scale != sq8.scales() || header.offset != sq8.offsets()) {
      return Status::InvalidArgument(
          path + ": quantization parameters do not match the provided "
                 "store (different training data or a mutated store)");
    }
    if (header.checksum != CodesChecksum(sq8)) {
      return Status::InvalidArgument(
          path + ": quantized code checksum mismatch — the provided store "
                 "does not hold the dataset this index was saved over");
    }
  } else if (header.storage == StorageKind::kPq) {
    const auto& pq = *static_cast<const PqStore*>(store);
    if (header.pq_m != pq.m() || header.codebooks != pq.codebooks()) {
      return Status::InvalidArgument(
          path + ": quantization parameters do not match the provided "
                 "store (different training data or a mutated store)");
    }
    if (header.checksum != CodesChecksum(pq)) {
      return Status::InvalidArgument(
          path + ": quantized code checksum mismatch — the provided store "
                 "does not hold the dataset this index was saved over");
    }
  } else if (header.checksum != DataChecksum(data)) {
    return Status::InvalidArgument(
        path + ": dataset content checksum mismatch — the provided data is "
               "not the dataset this index was saved over");
  }
  return LoadIndexBody(in, path, header.n, header.dim, &data, store);
}

}  // namespace dblsh
