#include "core/index_factory.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "util/text.h"

namespace dblsh {
namespace {

using text::Lower;
using text::Trim;

/// Lookup key for method names: upper-case, '-'/'_'/' ' stripped, so user
/// spellings like "db-lsh", "DB_LSH" and "DBLSH" all resolve.
std::string CanonicalName(const std::string& name) {
  std::string canonical;
  canonical.reserve(name.size());
  for (const char ch : name) {
    if (ch == '-' || ch == '_' || ch == ' ') continue;
    canonical.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(ch))));
  }
  return canonical;
}

struct Entry {
  std::string display_name;
  std::string description;
  IndexFactory::Builder builder;
};

/// Keyed by canonical name. Function-local static so registration from any
/// translation unit's static initializers is order-safe.
std::map<std::string, Entry>& Registry() {
  static auto* registry = new std::map<std::string, Entry>();
  return *registry;
}

}  // namespace

Result<IndexFactory::Spec> IndexFactory::Spec::Parse(const std::string& text) {
  Spec spec;
  size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string token =
        Trim(text.substr(pos, comma == std::string::npos ? std::string::npos
                                                         : comma - pos));
    pos = (comma == std::string::npos) ? text.size() + 1 : comma + 1;
    if (first) {
      if (token.empty()) {
        return Status::InvalidArgument(
            "index spec must start with a method name, e.g. "
            "\"DB-LSH,c=1.5\"");
      }
      if (token.find('=') != std::string::npos) {
        return Status::InvalidArgument(
            "index spec must start with a method name, got key=value "
            "token \"" +
            token + "\"");
      }
      spec.name_ = token;
      first = false;
      continue;
    }
    if (token.empty()) {
      return Status::InvalidArgument("empty token in index spec \"" + text +
                                     "\"");
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got \"" + token +
                                     "\" in index spec \"" + text + "\"");
    }
    const std::string key = Lower(Trim(token.substr(0, eq)));
    const std::string value = Trim(token.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("empty key in index spec \"" + text +
                                     "\"");
    }
    if (value.empty()) {
      return Status::InvalidArgument("empty value for key \"" + key +
                                     "\" in index spec \"" + text + "\"");
    }
    if (!spec.values_.emplace(key, value).second) {
      return Status::InvalidArgument("duplicate key \"" + key +
                                     "\" in index spec \"" + text + "\"");
    }
  }
  return spec;
}

void IndexFactory::Register(const std::string& name,
                            const std::string& description, Builder builder) {
  Registry()[CanonicalName(name)] =
      Entry{name, description, std::move(builder)};
}

Result<std::unique_ptr<AnnIndex>> IndexFactory::Make(
    const std::string& spec_text) {
  auto parsed = Spec::Parse(spec_text);
  if (!parsed.ok()) return parsed.status();
  const Spec& spec = parsed.value();

  const auto& registry = Registry();
  const auto it = registry.find(CanonicalName(spec.name()));
  if (it == registry.end()) {
    std::string known;
    for (const auto& [_, entry] : registry) {
      if (!known.empty()) known += ", ";
      known += entry.display_name;
    }
    return Status::NotFound("unknown index method \"" + spec.name() +
                            "\"; registered methods: " + known);
  }
  return it->second.builder(spec);
}

std::vector<std::string> IndexFactory::ListMethods() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [_, entry] : Registry()) {
    names.push_back(entry.display_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> IndexFactory::Describe(const std::string& name) {
  const auto& registry = Registry();
  const auto it = registry.find(CanonicalName(name));
  if (it == registry.end()) {
    return Status::NotFound("unknown index method \"" + name + "\"");
  }
  return it->second.description;
}

const std::string* SpecReader::Raw(const std::string& key) {
  consumed_.insert(key);
  const auto it = spec_.values().find(key);
  return it == spec_.values().end() ? nullptr : &it->second;
}

void SpecReader::RecordError(const std::string& key, const char* expected) {
  if (!error_.empty()) return;
  error_ = "key \"" + key + "\" of method \"" + spec_.name() + "\" expects " +
           expected + ", got \"" + spec_.values().at(key) + "\"";
}

void SpecReader::Key(const std::string& key, double* out) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    RecordError(key, "a number");
    return;
  }
  *out = value;
}

void SpecReader::Key(const std::string& key, bool* out) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return;
  const std::string value = Lower(*raw);
  if (value == "1" || value == "true" || value == "yes") {
    *out = true;
  } else if (value == "0" || value == "false" || value == "no") {
    *out = false;
  } else {
    RecordError(key, "a boolean (0/1/true/false)");
  }
}

void SpecReader::Key(const std::string& key, std::string* out) {
  const std::string* raw = Raw(key);
  if (raw != nullptr) *out = *raw;
}

bool SpecReader::ConsumeUnsigned(const std::string& key,
                                 unsigned long long* out) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || raw->front() == '-') {
    RecordError(key, "a non-negative integer");
    return false;
  }
  *out = value;
  return true;
}

Status SpecReader::Finish() {
  if (!error_.empty()) return Status::InvalidArgument(error_);
  for (const auto& [key, _] : spec_.values()) {
    if (consumed_.count(key) == 0) {
      return Status::InvalidArgument("method \"" + spec_.name() +
                                     "\" does not accept key \"" + key +
                                     "\"");
    }
  }
  return Status::OK();
}

}  // namespace dblsh
