#ifndef DBLSH_CORE_DB_LSH_H_
#define DBLSH_CORE_DB_LSH_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/ann_index.h"
#include "core/index_factory.h"
#include "core/verify.h"
#include "dataset/float_matrix.h"
#include "dataset/vector_store.h"
#include "kdtree/kd_tree.h"
#include "lsh/projection.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace dblsh {

/// How the query phase turns a projected space into buckets. Dynamic is
/// DB-LSH proper (query-centric hypercubes); Fixed reproduces the paper's
/// FB-LSH ablation, which keeps the identical (K,L)-index but uses
/// query-oblivious grid cells, re-introducing the hash-boundary problem.
enum class BucketingMode {
  kDynamicQueryCentric,
  kFixedGrid,
};

/// Which multi-dimensional index answers the window queries. The paper uses
/// the R*-tree but notes that "the only requirement of the index is that it
/// can efficiently answer a window query in the low-dimensional space"
/// (Sec. IV-B); the kd-tree backend demonstrates that pluggability and
/// feeds the backend ablation bench.
enum class IndexBackend {
  kRStarTree,
  kKdTree,
};

/// Construction parameters. Defaults mirror the paper's experimental
/// settings (Sec. VI-A): c = 1.5, w0 = 4c^2, L = 5, K = 12 for n > 1M and
/// K = 10 otherwise.
struct DbLshParams {
  double c = 1.5;    ///< approximation ratio (> 1)
  double w0 = 0.0;   ///< initial bucket width; 0 = auto (4 * c^2)
  size_t k = 0;      ///< hash functions per projected space; 0 = auto
  size_t l = 5;      ///< number of projected spaces (R*-trees)
  /// Candidate budget constant of Remark 2: a (c,k)-ANN query verifies at
  /// most 2tL + k candidates. 0 = auto (scales as max(64, n/100) / (2L)).
  size_t t = 0;
  /// Starting search radius r for the (r,c)-NN cascade; 0 = auto-estimated
  /// from a sample of nearest-neighbor distances so early rounds are not
  /// wasted on empty windows.
  double r0 = 0.0;
  /// Early-termination slack (the paper's Sec. VII future-work direction,
  /// in the spirit of I-LSH/EI-LSH): a round accepts the current k-th
  /// distance once it is within `early_stop_slack * c * r`. 1.0 (default)
  /// is the paper's exact condition; larger values stop earlier, trading
  /// the formal guarantee for speed (see the ablation bench).
  double early_stop_slack = 1.0;
  uint64_t seed = 42;
  BucketingMode bucketing = BucketingMode::kDynamicQueryCentric;
  IndexBackend backend = IndexBackend::kRStarTree;
  /// Bulk-load the R*-trees (paper default). Set false for the
  /// insertion-based construction ablation.
  bool bulk_load = true;
  rtree::RTreeOptions rtree_options;
};

/// DB-LSH: the paper's contribution. Indexing phase: project the dataset
/// into L K-dimensional spaces with independent 2-stable projections and
/// index each with an R*-tree. Query phase: answer a c-ANN query as a
/// cascade of (r,c)-NN queries with r = r0, c*r0, c^2*r0, ..., where each
/// round issues L window queries with query-centric hypercubic buckets of
/// width w0*r (Algorithms 1 and 2).
class DbLsh : public AnnIndex {
 public:
  /// Stores `params`; auto-derived fields (w0, k, t, r0) are resolved by
  /// Build(), so params() is only meaningful after a successful build.
  explicit DbLsh(DbLshParams params = DbLshParams());

  /// Reusable per-caller query state (visited-point stamps). `Query()`
  /// without a scratch uses a thread-local one, making the scratch-less
  /// read path fully thread-safe; callers that want to control scratch
  /// reuse across queries (eval::ParallelQuery, QueryBatch workers) pass
  /// their own.
  class QueryScratch {
   public:
    QueryScratch() = default;

   private:
    friend class DbLsh;
    std::vector<uint32_t> visited_epoch_;
    uint32_t epoch_ = 0;
  };

  /// "DB-LSH", or "FB-LSH" under the fixed-grid ablation bucketing.
  std::string Name() const override;
  /// Derives auto parameters (w0, K, t, r0), projects the dataset into the
  /// L spaces and builds one index per space. Live rows only when `data`
  /// carries tombstones. `data` must outlive the index.
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  /// c-ANN query via the (r,c)-NN cascade. Uses a thread-local scratch, so
  /// concurrent calls from different threads are safe.
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  /// Thread-safe variant: all mutable state lives in `scratch`.
  std::vector<Neighbor> Query(const float* query, size_t k, QueryStats* stats,
                              QueryScratch* scratch) const;
  /// Honors the request's candidate-budget (`t` of Remark 2) and starting
  /// radius overrides, so one built index serves per-query accuracy/latency
  /// trades without rebuilding.
  QueryResponse Search(const float* query,
                       const QueryRequest& request) const override;
  /// Fully parallel batch: one QueryScratch per worker thread over the
  /// immutable read path; responses are identical to sequential execution.
  std::vector<QueryResponse> QueryBatch(const FloatMatrix& queries,
                                        const QueryRequest& request,
                                        size_t num_threads = 0) const override;
  /// The read path is thread-safe: all per-query state lives in a scratch
  /// (thread-local for the scratch-less overloads), every structure access
  /// is const. This is what lets a Collection fan reader threads into one
  /// built DB-LSH under its shared lock.
  bool SupportsConcurrentQueries() const override { return true; }
  /// K*L: the paper's index-size proxy (n entries per hash function).
  size_t NumHashFunctions() const override { return params_.k * params_.l; }

  /// Dynamic updates — the structural payoff of "hash tables are just
  /// R*-trees": true for the R*-tree backend (incremental R* insertion and
  /// deletion-with-reinsertion), false for the static kd-tree backend.
  bool SupportsUpdates() const override;
  /// Projects row `id` into the L spaces and R*-inserts it into each tree.
  /// See AnnIndex::Insert for the dataset-first update protocol.
  Status Insert(uint32_t id) override;
  /// Removes `id` from all L trees (condense + orphan reinsertion). Call
  /// before the slot is recycled by FloatMatrix::InsertRow.
  Status Erase(uint32_t id) override;

  /// One (r,c)-NN round (Algorithm 1), exposed for tests and for the
  /// theoretical-guarantee property tests: returns a point within c*r of
  /// `query` if one is found under the 2tL+1 candidate budget, otherwise
  /// nothing.
  std::optional<Neighbor> RcNnQuery(const float* query, double r,
                                    QueryStats* stats = nullptr) const;

  /// Effective (post-auto-derivation) parameters; valid after Build().
  const DbLshParams& params() const { return params_; }

  /// Total entries across the L R*-trees (for index size accounting).
  size_t IndexEntries() const;

  /// Persists the built index (parameters, projection directions, projected
  /// points, and the dataset's tombstone set) to `path` in format version
  /// 3. The backing dataset itself is NOT stored — pass the same data to
  /// Load(); a checksum over its raw bytes is stored so a mismatched
  /// dataset is rejected rather than silently served. Trees are rebuilt by
  /// bulk loading on load, which is fast and keeps the file format simple
  /// and portable. Appended rows round-trip naturally (they are ordinary
  /// rows of the projected matrices by save time).
  ///
  /// Storage backends: when the dataset is managed by a quantized
  /// VectorStore (FloatMatrix::store(); the Collection's storage=sq8
  /// case), the file records the backend tag, the per-dimension
  /// quantization parameters, and a checksum over the u8 codes instead of
  /// the (released) fp32 payload. Such files are restored through
  /// LoadStore() + Load(path, VectorStore*).
  Status Save(const std::string& path) const;

  /// Restores an index saved with Save() over plain fp32 data (format
  /// version 2, or version 3/4 with the fp32 storage tag; sq8/pq-tagged
  /// files are rejected with InvalidArgument — use LoadStore + the
  /// VectorStore overload). `data` must hold the same bytes as the
  /// dataset the index
  /// was saved over — row count, dimensionality and content checksum are
  /// validated, returning InvalidArgument on any mismatch — and must
  /// outlive the returned index. The pointer is non-const because Load
  /// re-applies the saved tombstone set to `data` (erased rows are not
  /// persisted by fvecs files).
  static Result<DbLsh> Load(const std::string& path, FloatMatrix* data);

  /// Reconstructs the VectorStore an index file was saved over from the
  /// original fp32 dataset (as read from disk; tombstones are re-applied
  /// by the subsequent Load). For an fp32-tagged (or version-2) file this
  /// wraps `data` in an Fp32Store; for sq8 it re-encodes `data`'s rows
  /// with the *saved* scale/offset and for pq with the *saved* codebooks
  /// (never re-training) so the codes — and the stored code checksum —
  /// come out byte-identical. Consumes `data` in all cases, including
  /// errors.
  static Result<std::unique_ptr<VectorStore>> LoadStore(
      const std::string& path, std::unique_ptr<FloatMatrix> data);

  /// Restores an index saved with Save() against an existing store
  /// (typically from LoadStore). The file's storage tag must match the
  /// store's kind; for sq8/pq the saved quantization parameters and the
  /// code checksum are validated against the store (InvalidArgument on
  /// any mismatch). Saved tombstones are re-applied through the store. The
  /// store must outlive the returned index.
  static Result<DbLsh> Load(const std::string& path, VectorStore* store);

 private:
  /// Shared tail of the Load() overloads: parameters, projections,
  /// projected spaces, tombstone replay (through `store` when non-null so
  /// quantized backends stay in sync, else through `data`) and tree
  /// rebuild. `in` is positioned just past the storage-dependent prefix.
  static Result<DbLsh> LoadIndexBody(std::ifstream& in,
                                     const std::string& path, uint64_t n,
                                     uint64_t dim, FloatMatrix* data,
                                     VectorStore* store);

  /// Runs one round of L window queries at radius r, feeding candidates into
  /// `verifier` (which owns the heap, budget and certification bound) until
  /// the budget is exhausted or the k-th distance drops below c*r. Returns
  /// true when the query can terminate.
  bool RunRound(const float* query, double r, CandidateVerifier* verifier,
                std::vector<uint32_t>* visited_mark, uint32_t query_epoch,
                QueryStats* stats) const;

  /// Sizes `scratch` for this index and advances its epoch; returns the
  /// epoch to stamp visited points with.
  uint32_t PrepareScratch(QueryScratch* scratch) const;

  /// Shared query path: the (r,c)-NN cascade with an explicit candidate
  /// budget constant `t` and starting radius `r0` (the per-query override
  /// hooks of the QueryRequest API).
  std::vector<Neighbor> QueryImpl(const float* query, size_t k, size_t t,
                                  double r0, QueryStats* stats,
                                  QueryScratch* scratch) const;

  rtree::Rect MakeBucket(const float* proj_center, size_t tree_index,
                         double width) const;

  /// The calling thread's scratch for the scratch-less Query()/Search()
  /// overloads. One scratch is shared by every DbLsh instance on the
  /// thread: PrepareScratch re-assigns the stamp buffer on row-count
  /// mismatch (growing or shrinking — a thread parks at most one
  /// dataset's worth of stamps, not a high-water mark) and its epoch is
  /// monotone per scratch, so stamps written through one index can never
  /// alias another index's current epoch.
  static QueryScratch& ThreadLocalScratch();

  DbLshParams params_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;  // l*k functions
  std::vector<FloatMatrix> projected_;         // l matrices of n x k
  std::vector<rtree::RStarTree> trees_;        // kRStarTree backend
  std::vector<std::unique_ptr<kdtree::KdTree>> kd_trees_;  // kKdTree backend
  /// Random per-function grid offsets (the `b` of Eq. 1), used only by the
  /// FB-LSH fixed-grid mode so cell boundaries are unbiased.
  std::vector<float> grid_offsets_;
  double auto_r0_ = 1.0;
};

/// Applies spec keys (c, w0, k, l, t, r0, early_stop_slack, seed,
/// bulk_load, bucketing=dynamic|fixed, backend=rtree|kdtree) on top of
/// `base`. Shared by the DB-LSH and FB-LSH factory registrations.
Result<DbLshParams> DbLshParamsFromSpec(const IndexFactory::Spec& spec,
                                        DbLshParams base);

}  // namespace dblsh

#endif  // DBLSH_CORE_DB_LSH_H_
