#ifndef DBLSH_SIMD_SIMD_H_
#define DBLSH_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace dblsh {
namespace simd {

/// The instruction-set tiers a distance kernel can be compiled for. Which
/// tiers exist in the binary is a compile-time fact (per-TU -mavx2 /
/// -mavx512f, see CMakeLists); which tier runs is decided once at startup
/// from CPUID and can be overridden via ForceKernel() or the DBLSH_SIMD
/// environment variable (scalar | avx2 | avx512 | auto).
enum class KernelKind : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// One dispatch table entry: every member computes over `dim`-length float
/// vectors with no alignment requirement.
struct DistanceKernels {
  /// Squared Euclidean distance ||a - b||^2.
  float (*l2_squared)(const float* a, const float* b, size_t dim);

  /// Inner product <a, b>.
  float (*dot)(const float* a, const float* b, size_t dim);

  /// One-to-many batch: out[i] = ||query - base_row(ids[i])||^2 for
  /// i in [0, n), where base is a row-major matrix whose row r starts at
  /// `base + r * dim`. `ids == nullptr` means rows 0..n-1 of `base` (the
  /// contiguous-scan case). Rows ahead of the current candidate are
  /// software-prefetched, which is where the batch entry point beats n
  /// calls of `l2_squared` on index-emitted (random-order) candidates.
  void (*l2_squared_batch)(const float* query, const float* base, size_t dim,
                           const uint32_t* ids, size_t n, float* out);

  KernelKind kind;
  const char* name;
};

/// The dispatch table selected for this process. First use probes CPUID
/// (and the DBLSH_SIMD override); subsequent calls are a single relaxed
/// atomic load. Thread-safe; the returned reference points at static
/// storage and never dangles.
const DistanceKernels& Active();

/// True when `kind` is both compiled into this binary and supported by the
/// running CPU. Thread-safe, read-only.
bool Supported(KernelKind kind);

/// Pins the active kernel process-wide, e.g. to cross-check variants in
/// tests or benches, or to take an apples-to-apples scalar baseline.
/// Fails with InvalidArgument when `kind` is not Supported(), leaving the
/// previous selection in place. Safe to call concurrently with queries
/// (the switch is atomic), but a query already mid-verification finishes
/// on the tier it started with; don't interleave pinning with timed runs.
Status ForceKernel(KernelKind kind);

/// Reverts ForceKernel() pinning to the startup selection: the best
/// CPUID-supported tier, still honoring a DBLSH_SIMD environment override
/// if one is set (a process-wide operator choice outlives programmatic
/// pinning).
void UseAutoKernel();

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* KernelName(KernelKind kind);

}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_SIMD_H_
