#ifndef DBLSH_SIMD_SIMD_H_
#define DBLSH_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace dblsh {
namespace simd {

/// The instruction-set tiers a distance kernel can be compiled for. Which
/// tiers exist in the binary is a compile-time fact (per-TU -mavx2 /
/// -mavx512f, see CMakeLists); which tier runs is decided once at startup
/// from CPUID and can be overridden via ForceKernel() or the DBLSH_SIMD
/// environment variable (scalar | avx2 | avx512 | auto).
enum class KernelKind : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// One dispatch table entry: every member computes over `dim`-length float
/// vectors with no alignment requirement.
struct DistanceKernels {
  /// Squared Euclidean distance ||a - b||^2.
  float (*l2_squared)(const float* a, const float* b, size_t dim);

  /// Inner product <a, b>.
  float (*dot)(const float* a, const float* b, size_t dim);

  /// One-to-many batch: out[i] = ||query - base_row(ids[i])||^2 for
  /// i in [0, n), where base is a row-major matrix whose row r starts at
  /// `base + r * dim`. `ids == nullptr` means rows 0..n-1 of `base` (the
  /// contiguous-scan case). Rows ahead of the current candidate are
  /// software-prefetched, which is where the batch entry point beats n
  /// calls of `l2_squared` on index-emitted (random-order) candidates.
  void (*l2_squared_batch)(const float* query, const float* base, size_t dim,
                           const uint32_t* ids, size_t n, float* out);

  /// SQ8 hot-path score between a prepared query and one u8 code row:
  /// sum_d (prep[d] - scale[d] * code[d])^2. `prep` is the per-query
  /// precomputation scale[d] * quantized_query[d] (Sq8Store::PrepareQuery
  /// builds it); expressing both sides in code space cancels the
  /// per-dimension offsets, so scanning a row touches dim *bytes* instead
  /// of dim floats — the 4x bandwidth saving quantized storage exists for.
  float (*sq8_score)(const float* prep, const float* scale,
                     const uint8_t* code, size_t dim);

  /// One-to-many sq8_score: out[i] = score of row ids[i] (or row i when
  /// `ids == nullptr`), where row r's codes start at `codes + r * dim`.
  /// Software-prefetched like l2_squared_batch.
  void (*sq8_score_batch)(const float* prep, const float* scale,
                          const uint8_t* codes, size_t dim,
                          const uint32_t* ids, size_t n, float* out);

  /// SQ8 exact re-rank distance between the raw fp32 query and one u8 row
  /// decoded on the fly: sum_d (query[d] - (offset[d] + scale[d] *
  /// code[d]))^2. No query quantization error — the final top-k ordering
  /// under quantized storage comes from this kernel.
  float (*sq8_l2_asym)(const float* query, const float* offset,
                       const float* scale, const uint8_t* code, size_t dim);

  /// PQ ADC hot-path score between a per-query lookup table and one
  /// m-byte code row: sum_j lut[j * 256 + code[j]]. `lut` is the m x 256
  /// table of squared sub-distances PqStore::PrepareQuery computes once
  /// per query, so scanning a row is m table adds over m *bytes* — the
  /// bandwidth/compression win product quantization exists for. All three
  /// tiers share one canonical summation order (see ScalarPqAdc) and
  /// return bit-identical floats.
  float (*pq_adc)(const float* lut, const uint8_t* code, size_t m);

  /// One-to-many pq_adc: out[i] = score of row ids[i] (or row i when
  /// `ids == nullptr`), where row r's codes start at `codes + r * m`.
  /// Software-prefetched like the other batch entry points.
  void (*pq_adc_batch)(const float* lut, const uint8_t* codes, size_t m,
                       const uint32_t* ids, size_t n, float* out);

  KernelKind kind;
  const char* name;
};

/// The dispatch table selected for this process. First use probes CPUID
/// (and the DBLSH_SIMD override); subsequent calls are a single relaxed
/// atomic load. Thread-safe; the returned reference points at static
/// storage and never dangles.
const DistanceKernels& Active();

/// True when `kind` is both compiled into this binary and supported by the
/// running CPU. Thread-safe, read-only.
bool Supported(KernelKind kind);

/// Pins the active kernel process-wide, e.g. to cross-check variants in
/// tests or benches, or to take an apples-to-apples scalar baseline.
/// Fails with InvalidArgument when `kind` is not Supported(), leaving the
/// previous selection in place. Safe to call concurrently with queries
/// (the switch is atomic), but a query already mid-verification finishes
/// on the tier it started with; don't interleave pinning with timed runs.
Status ForceKernel(KernelKind kind);

/// Reverts ForceKernel() pinning to the startup selection: the best
/// CPUID-supported tier, still honoring a DBLSH_SIMD environment override
/// if one is set (a process-wide operator choice outlives programmatic
/// pinning).
void UseAutoKernel();

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* KernelName(KernelKind kind);

}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_SIMD_H_
