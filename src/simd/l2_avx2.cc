// AVX2+FMA distance kernels. This TU (alone) is compiled with
// -mavx2 -mfma; it must only be *called* after the runtime dispatcher has
// confirmed CPUID support, so nothing here may leak into headers.

#include "simd/kernels.h"

#if defined(DBLSH_HAVE_AVX2)

#include <immintrin.h>

namespace dblsh {
namespace simd {
namespace internal {
namespace {

/// Horizontal sum of an 8-lane register.
inline float Sum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

}  // namespace

float L2SquaredAvx2(const float* a, const float* b, size_t dim) {
  // Four independent accumulator chains: FMA latency is ~4 cycles at 2/cycle
  // throughput, so fewer chains leave the FMA ports idle on long vectors.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 16),
                                    _mm256_loadu_ps(b + i + 16));
    const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 24),
                                    _mm256_loadu_ps(b + i + 24));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    acc2 = _mm256_fmadd_ps(d2, d2, acc2);
    acc3 = _mm256_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = Sum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3)));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

float DotAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total = Sum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                   _mm256_add_ps(acc2, acc3)));
  for (; i < dim; ++i) {
    total += a[i] * b[i];
  }
  return total;
}

void L2SquaredBatchAvx2(const float* query, const float* base, size_t dim,
                        const uint32_t* ids, size_t n, float* out) {
  L2SquaredBatchImpl<&L2SquaredAvx2>(query, base, dim, ids, n, out);
}

namespace {

/// 8 code bytes widened to an 8-lane float register (u8 -> i32 -> f32;
/// both conversions are exact for 0..255).
inline __m256 Load8Codes(const uint8_t* code) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

}  // namespace

float Sq8ScoreAvx2(const float* prep, const float* scale,
                   const uint8_t* code, size_t dim) {
  // Two accumulator chains (not four): each step already chains a widening
  // load + fnmadd + fmadd, so the FMA ports stay fed at lower unroll.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 = _mm256_fnmadd_ps(_mm256_loadu_ps(scale + i),
                                       Load8Codes(code + i),
                                       _mm256_loadu_ps(prep + i));
    const __m256 d1 = _mm256_fnmadd_ps(_mm256_loadu_ps(scale + i + 8),
                                       Load8Codes(code + i + 8),
                                       _mm256_loadu_ps(prep + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_fnmadd_ps(_mm256_loadu_ps(scale + i),
                                      Load8Codes(code + i),
                                      _mm256_loadu_ps(prep + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = Sum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = prep[i] - scale[i] * static_cast<float>(code[i]);
    total += d * d;
  }
  return total;
}

float Sq8L2AsymAvx2(const float* query, const float* offset,
                    const float* scale, const uint8_t* code, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    // Decode offset + scale * code in-register, then difference to query.
    const __m256 r0 = _mm256_fmadd_ps(_mm256_loadu_ps(scale + i),
                                      Load8Codes(code + i),
                                      _mm256_loadu_ps(offset + i));
    const __m256 r1 = _mm256_fmadd_ps(_mm256_loadu_ps(scale + i + 8),
                                      Load8Codes(code + i + 8),
                                      _mm256_loadu_ps(offset + i + 8));
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(query + i), r0);
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(query + i + 8), r1);
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 r = _mm256_fmadd_ps(_mm256_loadu_ps(scale + i),
                                     Load8Codes(code + i),
                                     _mm256_loadu_ps(offset + i));
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(query + i), r);
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = Sum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    total += d * d;
  }
  return total;
}

void Sq8ScoreBatchAvx2(const float* prep, const float* scale,
                       const uint8_t* codes, size_t dim, const uint32_t* ids,
                       size_t n, float* out) {
  Sq8ScoreBatchImpl<&Sq8ScoreAvx2>(prep, scale, codes, dim, ids, n, out);
}

float PqAdcAvx2(const float* lut, const uint8_t* code, size_t m) {
  // One gather per 8 subspaces: widen 8 code bytes to i32, add the lane's
  // 256-entry sub-table offset, and gather 8 floats from lut + j*256.
  // Lane l is canonical bin l (terms j == l mod 8 in ascending j); the
  // tail and the reduce run scalar in the exact ScalarPqAdc order, so the
  // result is bit-identical to the scalar tier.
  const __m256i lane_off =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + j));
    const __m256i idx =
        _mm256_add_epi32(_mm256_cvtepu8_epi32(bytes), lane_off);
    acc = _mm256_add_ps(acc, _mm256_i32gather_ps(lut + j * 256, idx, 4));
  }
  float bins[8];
  _mm256_storeu_ps(bins, acc);
  for (; j < m; ++j) {
    bins[j & 7] += lut[j * 256 + code[j]];
  }
  return ((bins[0] + bins[4]) + (bins[2] + bins[6])) +
         ((bins[1] + bins[5]) + (bins[3] + bins[7]));
}

void PqAdcBatchAvx2(const float* lut, const uint8_t* codes, size_t m,
                    const uint32_t* ids, size_t n, float* out) {
  PqAdcBatchImpl<&PqAdcAvx2>(lut, codes, m, ids, n, out);
}

}  // namespace internal
}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_HAVE_AVX2
