#ifndef DBLSH_SIMD_SCALAR_KERNELS_H_
#define DBLSH_SIMD_SCALAR_KERNELS_H_

// The portable 4-way-unrolled scalar kernels, shared verbatim by the
// kScalar dispatch tier (simd.cc) and the small-dim inline fast path in
// util/distance.h. Keeping one definition is what makes "forced scalar is
// bit-identical to the historical results" a structural guarantee instead
// of a comment. Header-only and dependency-free on purpose: distance.h
// includes it, so it must not pull in simd.h or anything heavier.

#include <cstddef>
#include <cstdint>

namespace dblsh {
namespace simd {

/// ||a - b||^2 in float with 4 independent accumulators (fixed summation
/// order: the reference the vector tiers are property-tested against).
/// No alignment requirement; any dim.
inline float ScalarL2Squared(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// <a, b> in float, same unroll/summation structure as ScalarL2Squared.
inline float ScalarDot(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// SQ8 hot-path score between a prepared query and one u8 row:
/// sum_d (prep[d] - scale[d] * code[d])^2. `prep` is the per-query
/// precomputation scale[d] * quantize(query)[d] (see Sq8Store::PrepareQuery);
/// with both sides expressed in code space the per-dimension offsets cancel,
/// so the row side needs only one u8 load and one FMA-shaped multiply. Same
/// unroll/summation structure as ScalarL2Squared: this is the reference the
/// vector tiers are property-tested against.
inline float ScalarSq8Score(const float* prep, const float* scale,
                            const uint8_t* code, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = prep[i] - scale[i] * static_cast<float>(code[i]);
    const float d1 = prep[i + 1] - scale[i + 1] * static_cast<float>(code[i + 1]);
    const float d2 = prep[i + 2] - scale[i + 2] * static_cast<float>(code[i + 2]);
    const float d3 = prep[i + 3] - scale[i + 3] * static_cast<float>(code[i + 3]);
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = prep[i] - scale[i] * static_cast<float>(code[i]);
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// SQ8 exact re-rank distance between the raw fp32 query and one decoded
/// u8 row: sum_d (query[d] - (offset[d] + scale[d] * code[d]))^2. Unlike
/// ScalarSq8Score the query side is *not* quantized, so this removes the
/// query-quantization error from the final ordering — the re-rank scorer.
inline float ScalarSq8L2Asym(const float* query, const float* offset,
                             const float* scale, const uint8_t* code,
                             size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    const float d1 = query[i + 1] -
        (offset[i + 1] + scale[i + 1] * static_cast<float>(code[i + 1]));
    const float d2 = query[i + 2] -
        (offset[i + 2] + scale[i + 2] * static_cast<float>(code[i + 2]));
    const float d3 = query[i + 3] -
        (offset[i + 3] + scale[i + 3] * static_cast<float>(code[i + 3]));
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// PQ ADC score between a per-query lookup table and one m-byte code row:
/// sum_j lut[j * 256 + code[j]] for j in [0, m) — every subspace
/// contributes one table lookup, no arithmetic on the row side at all
/// (PqStore::PrepareQuery bakes the squared sub-distances into `lut`).
///
/// Summation order is CANONICAL across every tier, which is what makes
/// the three tiers bit-identical rather than merely tolerance-close:
/// 8 bins where bin[l] accumulates the terms j == l (mod 8) in ascending
/// j, then the fixed reduce ((b0+b4)+(b2+b6)) + ((b1+b5)+(b3+b7)) — the
/// exact order the AVX2/AVX-512 8-lane gather accumulators produce.
/// (Deliberately NOT the 4-accumulator pattern of the kernels above: a
/// gather lane is one bin, and the reduce mirrors the horizontal add.)
inline float ScalarPqAdc(const float* lut, const uint8_t* code, size_t m) {
  float bins[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    bins[0] += lut[(j + 0) * 256 + code[j + 0]];
    bins[1] += lut[(j + 1) * 256 + code[j + 1]];
    bins[2] += lut[(j + 2) * 256 + code[j + 2]];
    bins[3] += lut[(j + 3) * 256 + code[j + 3]];
    bins[4] += lut[(j + 4) * 256 + code[j + 4]];
    bins[5] += lut[(j + 5) * 256 + code[j + 5]];
    bins[6] += lut[(j + 6) * 256 + code[j + 6]];
    bins[7] += lut[(j + 7) * 256 + code[j + 7]];
  }
  for (; j < m; ++j) {
    bins[j & 7] += lut[j * 256 + code[j]];
  }
  return ((bins[0] + bins[4]) + (bins[2] + bins[6])) +
         ((bins[1] + bins[5]) + (bins[3] + bins[7]));
}

}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_SCALAR_KERNELS_H_
