#ifndef DBLSH_SIMD_SCALAR_KERNELS_H_
#define DBLSH_SIMD_SCALAR_KERNELS_H_

// The portable 4-way-unrolled scalar kernels, shared verbatim by the
// kScalar dispatch tier (simd.cc) and the small-dim inline fast path in
// util/distance.h. Keeping one definition is what makes "forced scalar is
// bit-identical to the historical results" a structural guarantee instead
// of a comment. Header-only and dependency-free on purpose: distance.h
// includes it, so it must not pull in simd.h or anything heavier.

#include <cstddef>

namespace dblsh {
namespace simd {

/// ||a - b||^2 in float with 4 independent accumulators (fixed summation
/// order: the reference the vector tiers are property-tested against).
/// No alignment requirement; any dim.
inline float ScalarL2Squared(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// <a, b> in float, same unroll/summation structure as ScalarL2Squared.
inline float ScalarDot(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_SCALAR_KERNELS_H_
