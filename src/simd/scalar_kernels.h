#ifndef DBLSH_SIMD_SCALAR_KERNELS_H_
#define DBLSH_SIMD_SCALAR_KERNELS_H_

// The portable 4-way-unrolled scalar kernels, shared verbatim by the
// kScalar dispatch tier (simd.cc) and the small-dim inline fast path in
// util/distance.h. Keeping one definition is what makes "forced scalar is
// bit-identical to the historical results" a structural guarantee instead
// of a comment. Header-only and dependency-free on purpose: distance.h
// includes it, so it must not pull in simd.h or anything heavier.

#include <cstddef>
#include <cstdint>

namespace dblsh {
namespace simd {

/// ||a - b||^2 in float with 4 independent accumulators (fixed summation
/// order: the reference the vector tiers are property-tested against).
/// No alignment requirement; any dim.
inline float ScalarL2Squared(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// <a, b> in float, same unroll/summation structure as ScalarL2Squared.
inline float ScalarDot(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// SQ8 hot-path score between a prepared query and one u8 row:
/// sum_d (prep[d] - scale[d] * code[d])^2. `prep` is the per-query
/// precomputation scale[d] * quantize(query)[d] (see Sq8Store::PrepareQuery);
/// with both sides expressed in code space the per-dimension offsets cancel,
/// so the row side needs only one u8 load and one FMA-shaped multiply. Same
/// unroll/summation structure as ScalarL2Squared: this is the reference the
/// vector tiers are property-tested against.
inline float ScalarSq8Score(const float* prep, const float* scale,
                            const uint8_t* code, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = prep[i] - scale[i] * static_cast<float>(code[i]);
    const float d1 = prep[i + 1] - scale[i + 1] * static_cast<float>(code[i + 1]);
    const float d2 = prep[i + 2] - scale[i + 2] * static_cast<float>(code[i + 2]);
    const float d3 = prep[i + 3] - scale[i + 3] * static_cast<float>(code[i + 3]);
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = prep[i] - scale[i] * static_cast<float>(code[i]);
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// SQ8 exact re-rank distance between the raw fp32 query and one decoded
/// u8 row: sum_d (query[d] - (offset[d] + scale[d] * code[d]))^2. Unlike
/// ScalarSq8Score the query side is *not* quantized, so this removes the
/// query-quantization error from the final ordering — the re-rank scorer.
inline float ScalarSq8L2Asym(const float* query, const float* offset,
                             const float* scale, const uint8_t* code,
                             size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    const float d1 = query[i + 1] -
        (offset[i + 1] + scale[i + 1] * static_cast<float>(code[i + 1]));
    const float d2 = query[i + 2] -
        (offset[i + 2] + scale[i + 2] * static_cast<float>(code[i + 2]));
    const float d3 = query[i + 3] -
        (offset[i + 3] + scale[i + 3] * static_cast<float>(code[i + 3]));
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_SCALAR_KERNELS_H_
