#ifndef DBLSH_SIMD_KERNELS_H_
#define DBLSH_SIMD_KERNELS_H_

// Internal: raw kernel entry points implemented in the per-ISA translation
// units (l2_avx2.cc, l2_avx512.cc). Only simd.cc should include this; user
// code goes through simd::Active().

#include <cstddef>
#include <cstdint>

namespace dblsh {
namespace simd {
namespace internal {

/// Shared one-to-many driver: instantiated inside each per-ISA translation
/// unit with that tier's one-to-one kernel, so the prefetch policy and the
/// ids-vs-contiguous row logic exist exactly once while still compiling
/// under each tier's flags. `ids == nullptr` means rows 0..n-1.
template <float (*KernelFn)(const float*, const float*, size_t)>
void L2SquaredBatchImpl(const float* query, const float* base, size_t dim,
                        const uint32_t* ids, size_t n, float* out) {
  constexpr size_t kAhead = 4;       // rows of prefetch distance
  constexpr size_t kMaxPrefetch = 512;  // bytes per row worth fetching ahead
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      const size_t next = ids ? ids[i + kAhead] : i + kAhead;
      const char* p = reinterpret_cast<const char*>(base + next * dim);
      const size_t bytes = dim * sizeof(float);
      for (size_t off = 0; off < bytes && off < kMaxPrefetch; off += 64) {
        __builtin_prefetch(p + off, 0, 3);
      }
    }
    const size_t row = ids ? ids[i] : i;
    out[i] = KernelFn(query, base + row * dim, dim);
  }
}

// Per-ISA raw entry points. Contracts are uniform — no alignment
// requirement, any dim (tail handled scalar), results match the scalar
// tier to float rounding — so they are documented once here rather than
// per prototype. Call only after CPUID says the tier is supported (the
// dispatcher in simd.cc guarantees this).
#if defined(DBLSH_HAVE_AVX2)
/// ||a - b||^2 with 8-lane FMA accumulation.
float L2SquaredAvx2(const float* a, const float* b, size_t dim);
/// <a, b> with 8-lane FMA accumulation.
float DotAvx2(const float* a, const float* b, size_t dim);
/// One-to-many ||query - row||^2 (see L2SquaredBatchImpl for semantics).
void L2SquaredBatchAvx2(const float* query, const float* base, size_t dim,
                        const uint32_t* ids, size_t n, float* out);
#endif

#if defined(DBLSH_HAVE_AVX512)
/// ||a - b||^2 with 16-lane masked-tail accumulation.
float L2SquaredAvx512(const float* a, const float* b, size_t dim);
/// <a, b> with 16-lane masked-tail accumulation.
float DotAvx512(const float* a, const float* b, size_t dim);
/// One-to-many ||query - row||^2 (see L2SquaredBatchImpl for semantics).
void L2SquaredBatchAvx512(const float* query, const float* base, size_t dim,
                          const uint32_t* ids, size_t n, float* out);
#endif

}  // namespace internal
}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_KERNELS_H_
