#ifndef DBLSH_SIMD_KERNELS_H_
#define DBLSH_SIMD_KERNELS_H_

// Internal: raw kernel entry points implemented in the per-ISA translation
// units (l2_avx2.cc, l2_avx512.cc). Only simd.cc should include this; user
// code goes through simd::Active().

#include <cstddef>
#include <cstdint>

namespace dblsh {
namespace simd {
namespace internal {

/// Shared one-to-many driver: instantiated inside each per-ISA translation
/// unit with that tier's one-to-one kernel, so the prefetch policy and the
/// ids-vs-contiguous row logic exist exactly once while still compiling
/// under each tier's flags. `ids == nullptr` means rows 0..n-1.
template <float (*KernelFn)(const float*, const float*, size_t)>
void L2SquaredBatchImpl(const float* query, const float* base, size_t dim,
                        const uint32_t* ids, size_t n, float* out) {
  constexpr size_t kAhead = 4;       // rows of prefetch distance
  constexpr size_t kMaxPrefetch = 512;  // bytes per row worth fetching ahead
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      const size_t next = ids ? ids[i + kAhead] : i + kAhead;
      const char* p = reinterpret_cast<const char*>(base + next * dim);
      const size_t bytes = dim * sizeof(float);
      for (size_t off = 0; off < bytes && off < kMaxPrefetch; off += 64) {
        __builtin_prefetch(p + off, 0, 3);
      }
    }
    const size_t row = ids ? ids[i] : i;
    out[i] = KernelFn(query, base + row * dim, dim);
  }
}

/// SQ8 sibling of L2SquaredBatchImpl: one-to-many over u8 code rows (row r
/// starts at `codes + r * dim`, one byte per dimension), scored against a
/// prepared query (see ScalarSq8Score for the math). Same prefetch policy;
/// a code row is dim bytes — a quarter of the fp32 footprint, which is the
/// whole point — so the lookahead covers proportionally more rows per
/// cache line. `ids == nullptr` means rows 0..n-1.
template <float (*KernelFn)(const float*, const float*, const uint8_t*,
                            size_t)>
void Sq8ScoreBatchImpl(const float* prep, const float* scale,
                       const uint8_t* codes, size_t dim, const uint32_t* ids,
                       size_t n, float* out) {
  constexpr size_t kAhead = 4;          // rows of prefetch distance
  constexpr size_t kMaxPrefetch = 512;  // bytes per row worth fetching ahead
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      const size_t next = ids ? ids[i + kAhead] : i + kAhead;
      const char* p = reinterpret_cast<const char*>(codes + next * dim);
      for (size_t off = 0; off < dim && off < kMaxPrefetch; off += 64) {
        __builtin_prefetch(p + off, 0, 3);
      }
    }
    const size_t row = ids ? ids[i] : i;
    out[i] = KernelFn(prep, scale, codes + row * dim, dim);
  }
}

/// PQ sibling of Sq8ScoreBatchImpl: one-to-many ADC over m-byte PQ code
/// rows (row r starts at `codes + r * m`, one byte per subspace), scored
/// against a per-query lookup table (see ScalarPqAdc for the math and the
/// canonical summation order). A code row is only m bytes — 16x smaller
/// than the fp32 row at dim 128 / m 16 — so a single prefetch line covers
/// several rows; the policy still mirrors the other batch drivers.
/// `ids == nullptr` means rows 0..n-1.
template <float (*KernelFn)(const float*, const uint8_t*, size_t)>
void PqAdcBatchImpl(const float* lut, const uint8_t* codes, size_t m,
                    const uint32_t* ids, size_t n, float* out) {
  constexpr size_t kAhead = 4;          // rows of prefetch distance
  constexpr size_t kMaxPrefetch = 512;  // bytes per row worth fetching ahead
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) {
      const size_t next = ids ? ids[i + kAhead] : i + kAhead;
      const char* p = reinterpret_cast<const char*>(codes + next * m);
      for (size_t off = 0; off < m && off < kMaxPrefetch; off += 64) {
        __builtin_prefetch(p + off, 0, 3);
      }
    }
    const size_t row = ids ? ids[i] : i;
    out[i] = KernelFn(lut, codes + row * m, m);
  }
}

// Per-ISA raw entry points. Contracts are uniform — no alignment
// requirement, any dim (tail handled scalar), results match the scalar
// tier to float rounding — so they are documented once here rather than
// per prototype. Call only after CPUID says the tier is supported (the
// dispatcher in simd.cc guarantees this).
#if defined(DBLSH_HAVE_AVX2)
/// ||a - b||^2 with 8-lane FMA accumulation.
float L2SquaredAvx2(const float* a, const float* b, size_t dim);
/// <a, b> with 8-lane FMA accumulation.
float DotAvx2(const float* a, const float* b, size_t dim);
/// One-to-many ||query - row||^2 (see L2SquaredBatchImpl for semantics).
void L2SquaredBatchAvx2(const float* query, const float* base, size_t dim,
                        const uint32_t* ids, size_t n, float* out);
/// SQ8 prepared-query vs u8-row score (see ScalarSq8Score), 8 lanes.
float Sq8ScoreAvx2(const float* prep, const float* scale,
                   const uint8_t* code, size_t dim);
/// SQ8 exact re-rank distance (see ScalarSq8L2Asym), 8 lanes.
float Sq8L2AsymAvx2(const float* query, const float* offset,
                    const float* scale, const uint8_t* code, size_t dim);
/// One-to-many SQ8 score (see Sq8ScoreBatchImpl for semantics).
void Sq8ScoreBatchAvx2(const float* prep, const float* scale,
                       const uint8_t* codes, size_t dim, const uint32_t* ids,
                       size_t n, float* out);
/// PQ ADC score via 8-lane i32 gathers over the lookup table — lane l is
/// canonical bin l, so the result is bit-identical to ScalarPqAdc.
float PqAdcAvx2(const float* lut, const uint8_t* code, size_t m);
/// One-to-many PQ ADC score (see PqAdcBatchImpl for semantics).
void PqAdcBatchAvx2(const float* lut, const uint8_t* codes, size_t m,
                    const uint32_t* ids, size_t n, float* out);
#endif

#if defined(DBLSH_HAVE_AVX512)
/// ||a - b||^2 with 16-lane masked-tail accumulation.
float L2SquaredAvx512(const float* a, const float* b, size_t dim);
/// <a, b> with 16-lane masked-tail accumulation.
float DotAvx512(const float* a, const float* b, size_t dim);
/// One-to-many ||query - row||^2 (see L2SquaredBatchImpl for semantics).
void L2SquaredBatchAvx512(const float* query, const float* base, size_t dim,
                          const uint32_t* ids, size_t n, float* out);
/// SQ8 prepared-query vs u8-row score (see ScalarSq8Score), 16 lanes.
/// The u8 tail is scalar: masked byte loads need AVX-512BW, which this
/// binary does not require (only -mavx512f is compiled).
float Sq8ScoreAvx512(const float* prep, const float* scale,
                     const uint8_t* code, size_t dim);
/// SQ8 exact re-rank distance (see ScalarSq8L2Asym), 16 lanes.
float Sq8L2AsymAvx512(const float* query, const float* offset,
                      const float* scale, const uint8_t* code, size_t dim);
/// One-to-many SQ8 score (see Sq8ScoreBatchImpl for semantics).
void Sq8ScoreBatchAvx512(const float* prep, const float* scale,
                         const uint8_t* codes, size_t dim,
                         const uint32_t* ids, size_t n, float* out);
/// PQ ADC score, single row. Uses the same 8-lane gather shape as the
/// AVX2 kernel (-mavx512f implies AVX2 codegen): the canonical 8-bin
/// summation order pins the accumulator width, so a 16-bin kernel could
/// not be bit-identical. The 512-bit win is in the batch entry point.
float PqAdcAvx512(const float* lut, const uint8_t* code, size_t m);
/// One-to-many PQ ADC: two rows per 512-bit gather (lanes 0-7 = row A's
/// bins, 8-15 = row B's) — cross-row parallelism never reorders a row's
/// own sums, so per-row results stay bit-identical to ScalarPqAdc.
void PqAdcBatchAvx512(const float* lut, const uint8_t* codes, size_t m,
                      const uint32_t* ids, size_t n, float* out);
#endif

}  // namespace internal
}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_SIMD_KERNELS_H_
