// AVX-512F distance kernels. This TU (alone) is compiled with -mavx512f;
// it must only be *called* after the runtime dispatcher has confirmed
// CPUID support. Tails use masked loads, so there is no scalar remainder.

#include "simd/kernels.h"

#if defined(DBLSH_HAVE_AVX512)

#include <immintrin.h>

namespace dblsh {
namespace simd {
namespace internal {

float L2SquaredAvx512(const float* a, const float* b, size_t dim) {
  // Four independent accumulator chains to cover the FMA latency/throughput
  // product on 512-bit ports.
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 32),
                                    _mm512_loadu_ps(b + i + 32));
    const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 48),
                                    _mm512_loadu_ps(b + i + 48));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    acc2 = _mm512_fmadd_ps(d2, d2, acc2);
    acc3 = _mm512_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    const __mmask16 m = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    const __m512 d = _mm512_maskz_sub_ps(m, _mm512_maskz_loadu_ps(m, a + i),
                                         _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

float DotAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 32),
                           _mm512_loadu_ps(b + i + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 48),
                           _mm512_loadu_ps(b + i + 48), acc3);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < dim) {
    const __mmask16 m = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

void L2SquaredBatchAvx512(const float* query, const float* base, size_t dim,
                          const uint32_t* ids, size_t n, float* out) {
  L2SquaredBatchImpl<&L2SquaredAvx512>(query, base, dim, ids, n, out);
}

namespace {

/// 16 code bytes widened to a 16-lane float register (u8 -> i32 -> f32;
/// both conversions are exact for 0..255).
inline __m512 Load16Codes(const uint8_t* code) {
  const __m128i bytes =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(code));
  return _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
}

}  // namespace

float Sq8ScoreAvx512(const float* prep, const float* scale,
                     const uint8_t* code, size_t dim) {
  // Scalar tail instead of the fp32 kernels' masked loads: a masked *byte*
  // load needs AVX-512BW and this TU only assumes -mavx512f.
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i),
                                       Load16Codes(code + i),
                                       _mm512_loadu_ps(prep + i));
    const __m512 d1 = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i + 16),
                                       Load16Codes(code + i + 16),
                                       _mm512_loadu_ps(prep + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 d = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i),
                                      Load16Codes(code + i),
                                      _mm512_loadu_ps(prep + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  float total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = prep[i] - scale[i] * static_cast<float>(code[i]);
    total += d * d;
  }
  return total;
}

float Sq8L2AsymAvx512(const float* query, const float* offset,
                      const float* scale, const uint8_t* code, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    // Decode offset + scale * code in-register, then difference to query.
    const __m512 r0 = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i),
                                      Load16Codes(code + i),
                                      _mm512_loadu_ps(offset + i));
    const __m512 r1 = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i + 16),
                                      Load16Codes(code + i + 16),
                                      _mm512_loadu_ps(offset + i + 16));
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(query + i), r0);
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(query + i + 16), r1);
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 r = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i),
                                     Load16Codes(code + i),
                                     _mm512_loadu_ps(offset + i));
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(query + i), r);
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  float total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    total += d * d;
  }
  return total;
}

void Sq8ScoreBatchAvx512(const float* prep, const float* scale,
                         const uint8_t* codes, size_t dim,
                         const uint32_t* ids, size_t n, float* out) {
  Sq8ScoreBatchImpl<&Sq8ScoreAvx512>(prep, scale, codes, dim, ids, n, out);
}

}  // namespace internal
}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_HAVE_AVX512
