// AVX-512F distance kernels. This TU (alone) is compiled with -mavx512f;
// it must only be *called* after the runtime dispatcher has confirmed
// CPUID support. Tails use masked loads, so there is no scalar remainder.

#include "simd/kernels.h"

#if defined(DBLSH_HAVE_AVX512)

#include <immintrin.h>

namespace dblsh {
namespace simd {
namespace internal {

float L2SquaredAvx512(const float* a, const float* b, size_t dim) {
  // Four independent accumulator chains to cover the FMA latency/throughput
  // product on 512-bit ports.
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 32),
                                    _mm512_loadu_ps(b + i + 32));
    const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 48),
                                    _mm512_loadu_ps(b + i + 48));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    acc2 = _mm512_fmadd_ps(d2, d2, acc2);
    acc3 = _mm512_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    const __mmask16 m = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    const __m512 d = _mm512_maskz_sub_ps(m, _mm512_maskz_loadu_ps(m, a + i),
                                         _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

float DotAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 32),
                           _mm512_loadu_ps(b + i + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 48),
                           _mm512_loadu_ps(b + i + 48), acc3);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < dim) {
    const __mmask16 m = static_cast<__mmask16>((1u << (dim - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                            _mm512_add_ps(acc2, acc3)));
}

void L2SquaredBatchAvx512(const float* query, const float* base, size_t dim,
                          const uint32_t* ids, size_t n, float* out) {
  L2SquaredBatchImpl<&L2SquaredAvx512>(query, base, dim, ids, n, out);
}

namespace {

/// 16 code bytes widened to a 16-lane float register (u8 -> i32 -> f32;
/// both conversions are exact for 0..255).
inline __m512 Load16Codes(const uint8_t* code) {
  const __m128i bytes =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(code));
  return _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
}

}  // namespace

float Sq8ScoreAvx512(const float* prep, const float* scale,
                     const uint8_t* code, size_t dim) {
  // Scalar tail instead of the fp32 kernels' masked loads: a masked *byte*
  // load needs AVX-512BW and this TU only assumes -mavx512f.
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i),
                                       Load16Codes(code + i),
                                       _mm512_loadu_ps(prep + i));
    const __m512 d1 = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i + 16),
                                       Load16Codes(code + i + 16),
                                       _mm512_loadu_ps(prep + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 d = _mm512_fnmadd_ps(_mm512_loadu_ps(scale + i),
                                      Load16Codes(code + i),
                                      _mm512_loadu_ps(prep + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  float total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = prep[i] - scale[i] * static_cast<float>(code[i]);
    total += d * d;
  }
  return total;
}

float Sq8L2AsymAvx512(const float* query, const float* offset,
                      const float* scale, const uint8_t* code, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    // Decode offset + scale * code in-register, then difference to query.
    const __m512 r0 = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i),
                                      Load16Codes(code + i),
                                      _mm512_loadu_ps(offset + i));
    const __m512 r1 = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i + 16),
                                      Load16Codes(code + i + 16),
                                      _mm512_loadu_ps(offset + i + 16));
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(query + i), r0);
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(query + i + 16), r1);
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    const __m512 r = _mm512_fmadd_ps(_mm512_loadu_ps(scale + i),
                                     Load16Codes(code + i),
                                     _mm512_loadu_ps(offset + i));
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(query + i), r);
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  float total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d =
        query[i] - (offset[i] + scale[i] * static_cast<float>(code[i]));
    total += d * d;
  }
  return total;
}

void Sq8ScoreBatchAvx512(const float* prep, const float* scale,
                         const uint8_t* codes, size_t dim,
                         const uint32_t* ids, size_t n, float* out) {
  Sq8ScoreBatchImpl<&Sq8ScoreAvx512>(prep, scale, codes, dim, ids, n, out);
}

namespace {

/// 8 code bytes -> 8 lut gather indices (lane l = l*256 + code[l]).
inline __m256i PqIndices8(const uint8_t* code) {
  const __m256i lane_off =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code));
  return _mm256_add_epi32(_mm256_cvtepu8_epi32(bytes), lane_off);
}

/// The canonical 8-bin reduce (see ScalarPqAdc): tail terms fold into
/// bins[j mod 8], then the fixed-order horizontal sum.
inline float PqReduceTail(const float* lut, const uint8_t* code, size_t m,
                          size_t j, float bins[8]) {
  for (; j < m; ++j) {
    bins[j & 7] += lut[j * 256 + code[j]];
  }
  return ((bins[0] + bins[4]) + (bins[2] + bins[6])) +
         ((bins[1] + bins[5]) + (bins[3] + bins[7]));
}

}  // namespace

float PqAdcAvx512(const float* lut, const uint8_t* code, size_t m) {
  // 8-lane gathers, same shape as the AVX2 kernel: the canonical 8-bin
  // summation order (bit-identity across tiers) pins the accumulator
  // width at 8 lanes for a single row. -mavx512f implies AVX2 codegen,
  // so the 256-bit gather is available in this TU.
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    acc = _mm256_add_ps(acc,
                        _mm256_i32gather_ps(lut + j * 256,
                                            PqIndices8(code + j), 4));
  }
  float bins[8];
  _mm256_storeu_ps(bins, acc);
  return PqReduceTail(lut, code, m, j, bins);
}

void PqAdcBatchAvx512(const float* lut, const uint8_t* codes, size_t m,
                      const uint32_t* ids, size_t n, float* out) {
  // Two rows per 512-bit gather: lanes 0-7 hold row A's canonical bins,
  // lanes 8-15 row B's. Cross-row lane packing never reorders a row's own
  // additions, so each result stays bit-identical to ScalarPqAdc while
  // the gather ports see twice the work per instruction.
  constexpr size_t kAhead = 4;          // rows of prefetch distance
  constexpr size_t kMaxPrefetch = 512;  // bytes per row worth fetching ahead
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (i + kAhead < n) {
      const size_t next = ids ? ids[i + kAhead] : i + kAhead;
      const char* p = reinterpret_cast<const char*>(codes + next * m);
      for (size_t off = 0; off < m && off < kMaxPrefetch; off += 64) {
        __builtin_prefetch(p + off, 0, 3);
      }
    }
    const uint8_t* ca = codes + (ids ? ids[i] : i) * m;
    const uint8_t* cb = codes + (ids ? ids[i + 1] : i + 1) * m;
    __m512 acc = _mm512_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      const __m512i idx = _mm512_inserti64x4(
          _mm512_castsi256_si512(PqIndices8(ca + j)), PqIndices8(cb + j), 1);
      acc = _mm512_add_ps(acc, _mm512_i32gather_ps(idx, lut + j * 256, 4));
    }
    float bins[16];
    _mm512_storeu_ps(bins, acc);
    out[i] = PqReduceTail(lut, ca, m, j, bins);
    out[i + 1] = PqReduceTail(lut, cb, m, j, bins + 8);
  }
  if (i < n) {
    out[i] = PqAdcAvx512(lut, codes + (ids ? ids[i] : i) * m, m);
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace dblsh

#endif  // DBLSH_HAVE_AVX512
