#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "simd/kernels.h"
#include "simd/scalar_kernels.h"

namespace dblsh {
namespace simd {
namespace {

// ------------------------------------------------------------- scalar ----
// The scalar tier is the pre-SIMD util/distance.h kernel (4-way unrolled
// partial sums) — literally the same inline functions, shared via
// scalar_kernels.h — so forcing kScalar yields exactly the historical
// results.

float L2SquaredScalar(const float* a, const float* b, size_t dim) {
  return ScalarL2Squared(a, b, dim);
}

float DotScalar(const float* a, const float* b, size_t dim) {
  return ScalarDot(a, b, dim);
}

void L2SquaredBatchScalar(const float* query, const float* base, size_t dim,
                          const uint32_t* ids, size_t n, float* out) {
  internal::L2SquaredBatchImpl<&L2SquaredScalar>(query, base, dim, ids, n,
                                                 out);
}

float Sq8ScoreScalarKernel(const float* prep, const float* scale,
                           const uint8_t* code, size_t dim) {
  return ScalarSq8Score(prep, scale, code, dim);
}

float Sq8L2AsymScalarKernel(const float* query, const float* offset,
                            const float* scale, const uint8_t* code,
                            size_t dim) {
  return ScalarSq8L2Asym(query, offset, scale, code, dim);
}

void Sq8ScoreBatchScalar(const float* prep, const float* scale,
                         const uint8_t* codes, size_t dim,
                         const uint32_t* ids, size_t n, float* out) {
  internal::Sq8ScoreBatchImpl<&Sq8ScoreScalarKernel>(prep, scale, codes, dim,
                                                     ids, n, out);
}

float PqAdcScalarKernel(const float* lut, const uint8_t* code, size_t m) {
  return ScalarPqAdc(lut, code, m);
}

void PqAdcBatchScalar(const float* lut, const uint8_t* codes, size_t m,
                      const uint32_t* ids, size_t n, float* out) {
  internal::PqAdcBatchImpl<&PqAdcScalarKernel>(lut, codes, m, ids, n, out);
}

constexpr DistanceKernels kScalarKernels = {
    &L2SquaredScalar, &DotScalar, &L2SquaredBatchScalar,
    &Sq8ScoreScalarKernel, &Sq8ScoreBatchScalar, &Sq8L2AsymScalarKernel,
    &PqAdcScalarKernel, &PqAdcBatchScalar,
    KernelKind::kScalar, "scalar"};

#if defined(DBLSH_HAVE_AVX2)
constexpr DistanceKernels kAvx2Kernels = {
    &internal::L2SquaredAvx2, &internal::DotAvx2,
    &internal::L2SquaredBatchAvx2, &internal::Sq8ScoreAvx2,
    &internal::Sq8ScoreBatchAvx2, &internal::Sq8L2AsymAvx2,
    &internal::PqAdcAvx2, &internal::PqAdcBatchAvx2,
    KernelKind::kAvx2, "avx2"};
#endif
#if defined(DBLSH_HAVE_AVX512)
constexpr DistanceKernels kAvx512Kernels = {
    &internal::L2SquaredAvx512, &internal::DotAvx512,
    &internal::L2SquaredBatchAvx512, &internal::Sq8ScoreAvx512,
    &internal::Sq8ScoreBatchAvx512, &internal::Sq8L2AsymAvx512,
    &internal::PqAdcAvx512, &internal::PqAdcBatchAvx512,
    KernelKind::kAvx512, "avx512"};
#endif

// ----------------------------------------------------------- dispatch ----

bool CpuSupports(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
#if defined(DBLSH_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case KernelKind::kAvx512:
#if defined(DBLSH_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

const DistanceKernels* TableFor(KernelKind kind) {
  switch (kind) {
#if defined(DBLSH_HAVE_AVX512)
    case KernelKind::kAvx512:
      return &kAvx512Kernels;
#endif
#if defined(DBLSH_HAVE_AVX2)
    case KernelKind::kAvx2:
      return &kAvx2Kernels;
#endif
    default:
      return &kScalarKernels;
  }
}

/// Best tier the CPU can run, honoring a DBLSH_SIMD environment override.
/// An override that cannot be honored falls back to CPUID selection with a
/// stderr warning — silently comparing the wrong kernels would defeat the
/// variable's purpose (apples-to-apples runs on mixed hardware).
const DistanceKernels* Detect() {
  if (const char* env = std::getenv("DBLSH_SIMD")) {
    const std::string v(env);
    if (v == "scalar" || v == "avx2" || v == "avx512") {
      const KernelKind forced = v == "scalar"   ? KernelKind::kScalar
                                : v == "avx2"   ? KernelKind::kAvx2
                                                : KernelKind::kAvx512;
      if (CpuSupports(forced)) return TableFor(forced);
      std::fprintf(stderr,
                   "dblsh: DBLSH_SIMD=%s is not available on this "
                   "CPU/binary; falling back to auto selection\n",
                   env);
    } else if (v != "auto") {
      std::fprintf(stderr,
                   "dblsh: unrecognized DBLSH_SIMD=\"%s\" (expected scalar"
                   " | avx2 | avx512 | auto); using auto selection\n",
                   env);
    }
  }
  if (CpuSupports(KernelKind::kAvx512)) return TableFor(KernelKind::kAvx512);
  if (CpuSupports(KernelKind::kAvx2)) return TableFor(KernelKind::kAvx2);
  return TableFor(KernelKind::kScalar);
}

/// Startup selection, computed (and any DBLSH_SIMD warning printed) once
/// per process.
const DistanceKernels* AutoTable() {
  static const DistanceKernels* table = Detect();
  return table;
}

std::atomic<const DistanceKernels*> g_active{nullptr};

}  // namespace

const DistanceKernels& Active() {
  const DistanceKernels* table = g_active.load(std::memory_order_relaxed);
  if (table == nullptr) {
    // Benign race: AutoTable() is idempotent and returns static storage.
    table = AutoTable();
    g_active.store(table, std::memory_order_relaxed);
  }
  return *table;
}

bool Supported(KernelKind kind) { return CpuSupports(kind); }

Status ForceKernel(KernelKind kind) {
  if (!CpuSupports(kind)) {
    return Status::InvalidArgument(
        std::string("SIMD kernel tier \"") + KernelName(kind) +
        "\" is not available (not compiled in or unsupported by this CPU)");
  }
  g_active.store(TableFor(kind), std::memory_order_relaxed);
  return Status::OK();
}

void UseAutoKernel() {
  g_active.store(AutoTable(), std::memory_order_relaxed);
}

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace dblsh
