#ifndef DBLSH_EXEC_TASK_EXECUTOR_H_
#define DBLSH_EXEC_TASK_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dblsh::exec {

/// The number of worker threads a default-sized pool uses: the hardware
/// concurrency, never less than 1.
size_t HardwareConcurrency();

/// One fixed-size work-stealing thread pool for the whole process: index
/// builds, batched queries, shard fan-outs and background rebuilds all run
/// as tasks on the same executor instead of each call site spawning its own
/// threads. This is the ONLY place in the library that creates threads.
///
///   exec::TaskExecutor& pool = exec::TaskExecutor::Default();
///   auto done = pool.Submit([] { return BuildSomething(); });
///   pool.ParallelFor(queries.rows(), [&](size_t q) { Answer(q); });
///   done.get();
///
/// Scheduling: each worker owns a deque; tasks submitted from a worker go
/// to its own deque (popped LIFO for locality), tasks from outside are
/// distributed round-robin, and idle workers steal FIFO from the others —
/// so one slow task never strands work queued behind it.
///
/// Nesting and blocking: ParallelFor's caller always participates in its
/// own loop, and it only ever joins helpers that are actively running an
/// iteration — helpers still stuck in a queue are harmless no-ops it does
/// not wait for. A ParallelFor issued from inside a task therefore
/// completes even when every worker is busy (the caller just runs the
/// whole range itself), nested parallel sections cannot deadlock the pool,
/// and it is safe to call while holding a lock as long as the loop *body*
/// does not acquire a lock the caller holds. The one way to deadlock is a
/// task that blocks on the future of another queued task; use ParallelFor
/// (or RunOnePendingTask in a wait loop) for fan-out/join instead.
///
/// Shutdown: the destructor stops intake, drains every queued task
/// (submitted futures all become ready), and joins the workers.
///
/// Thread-safety: all public members are safe to call concurrently.
class TaskExecutor {
 public:
  /// Creates a pool of `num_threads` workers; 0 sizes it to the hardware
  /// concurrency. A pool always has at least one worker.
  explicit TaskExecutor(size_t num_threads = 0);

  /// Drains all queued tasks, then joins the workers. Tasks still queued
  /// run to completion (their futures become ready); submitting from
  /// another thread during destruction is undefined.
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  /// Number of worker threads in the pool.
  size_t num_threads() const { return queues_.size(); }

  /// Enqueues a fire-and-forget task. The task runs exactly once, on some
  /// worker (or inside another caller's help loop).
  void Schedule(std::function<void()> task);

  /// Enqueues `fn` and returns the future of its result; exceptions thrown
  /// by `fn` surface from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Schedule([task]() { (*task)(); });
    return result;
  }

  /// Runs `body(i)` for every i in [0, n), fanning out over at most
  /// `max_parallelism` concurrent executors of the loop (0 = pool width +
  /// the caller). The caller participates, so the call completes even on a
  /// saturated pool; remaining iterations stop after the first exception,
  /// which is rethrown here. Blocks until every started iteration finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   size_t max_parallelism = 0);

  /// ParallelFor with per-executor state: `make_worker()` runs once in each
  /// participating thread (caller included) and returns that thread's
  /// iteration body — the hook QueryBatch uses to give every worker its own
  /// query scratch. Iterations are handed out dynamically; `make_worker`
  /// and the returned bodies are only used before this call returns.
  void ParallelForWorkers(
      size_t n, size_t max_parallelism,
      const std::function<std::function<void(size_t)>()>& make_worker);

  /// Runs one queued task on the calling thread if any is pending; returns
  /// whether a task ran. Lets a thread that must block on pool work lend a
  /// hand instead of deadlocking (see Collection::WaitForRebuilds).
  bool RunOnePendingTask();

  /// The process-wide default pool, created on first use with the hardware
  /// concurrency (or the width last requested via SetDefaultThreads).
  static TaskExecutor& Default();

  /// Replaces the default pool with one of `num_threads` workers (0 =
  /// hardware concurrency). Call at startup, before anything holds a
  /// reference to the previous default: the old pool is drained and
  /// destroyed. Intended for CLI --threads flags and tests.
  static void SetDefaultThreads(size_t num_threads);

 private:
  /// One worker's mutex-guarded deque. Owner pushes/pops at the back;
  /// thieves take from the front.
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Body of worker `self`: run/steal tasks, park when idle, drain on
  /// shutdown.
  void WorkerLoop(size_t self);

  /// Pops a task: the calling worker's own queue first (back, LIFO), then
  /// the other queues (front, FIFO). `home` is npos for non-worker threads.
  std::function<void()> TakeTask(size_t home);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  size_t pending_ = 0;  ///< queued tasks, guarded by wake_mutex_
  bool stopping_ = false;  ///< guarded by wake_mutex_
  std::atomic<size_t> next_queue_{0};  ///< round-robin cursor for outsiders
};

}  // namespace dblsh::exec

#endif  // DBLSH_EXEC_TASK_EXECUTOR_H_
