#include "exec/task_executor.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace dblsh::exec {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// Submit-from-a-worker lands in that worker's own deque and TakeTask knows
/// which queue to prefer.
struct WorkerIdentity {
  TaskExecutor* pool = nullptr;
  size_t index = 0;
};

thread_local WorkerIdentity tls_worker;

constexpr size_t kNotAWorker = static_cast<size_t>(-1);

}  // namespace

size_t HardwareConcurrency() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

TaskExecutor::TaskExecutor(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareConcurrency();
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void TaskExecutor::Schedule(std::function<void()> task) {
  const size_t home = tls_worker.pool == this
                          ? tls_worker.index
                          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                                queues_.size();
  {
    std::lock_guard queue_lock(queues_[home]->mutex);
    queues_[home]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard lock(wake_mutex_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

std::function<void()> TaskExecutor::TakeTask(size_t home) {
  std::function<void()> task;
  if (home != kNotAWorker) {
    Queue& own = *queues_[home];
    std::lock_guard lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  for (size_t i = 0; task == nullptr && i < queues_.size(); ++i) {
    if (i == home) continue;
    Queue& victim = *queues_[i];
    std::lock_guard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
    }
  }
  if (task != nullptr) {
    std::lock_guard lock(wake_mutex_);
    --pending_;
  }
  return task;
}

bool TaskExecutor::RunOnePendingTask() {
  const size_t home =
      tls_worker.pool == this ? tls_worker.index : kNotAWorker;
  std::function<void()> task = TakeTask(home);
  if (task == nullptr) return false;
  task();
  return true;
}

void TaskExecutor::WorkerLoop(size_t self) {
  tls_worker = {this, self};
  for (;;) {
    std::function<void()> task = TakeTask(self);
    if (task != nullptr) {
      task();
      continue;
    }
    std::unique_lock lock(wake_mutex_);
    wake_cv_.wait(lock, [&] { return pending_ > 0 || stopping_; });
    if (pending_ == 0 && stopping_) return;  // drained: safe to exit
  }
}

namespace {

/// Heap-allocated state of one parallel loop, shared by the caller and its
/// helper tasks. Keeping it on the heap (not the caller's stack) is what
/// makes a saturated pool safe: a helper that only gets dequeued after the
/// loop already finished sees an exhausted counter, touches nothing but
/// this state, and exits — the caller never has to wait for helpers that
/// never started, so it cannot deadlock against its own queued work.
struct LoopState {
  explicit LoopState(size_t total) : n(total) {}
  const size_t n;
  std::atomic<size_t> next{0};    ///< iteration hand-out counter
  std::atomic<size_t> active{0};  ///< helpers currently inside Drain
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;  ///< first exception, guarded by error_mutex
  std::function<std::function<void(size_t)>()> make_worker;
};

/// Pulls iterations off `st` until the range (or an error) exhausts it.
/// The order of checks matters for lifetime safety: make_worker — whose
/// captures may reference the caller's stack — is only invoked after this
/// thread has claimed a live iteration, which cannot happen once the
/// caller's exit condition (failed or next >= n, both monotone) held.
void Drain(LoopState& st) {
  if (st.failed.load(std::memory_order_acquire)) return;
  size_t i = st.next.fetch_add(1, std::memory_order_relaxed);
  if (i >= st.n) return;
  std::function<void(size_t)> work = st.make_worker();
  for (;;) {
    try {
      work(i);
    } catch (...) {
      {
        std::lock_guard lock(st.error_mutex);
        if (st.error == nullptr) st.error = std::current_exception();
      }
      st.failed.store(true, std::memory_order_release);
      return;
    }
    if (st.failed.load(std::memory_order_acquire)) return;
    i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st.n) return;
  }
}

}  // namespace

void TaskExecutor::ParallelFor(size_t n,
                               const std::function<void(size_t)>& body,
                               size_t max_parallelism) {
  ParallelForWorkers(n, max_parallelism,
                     [&body]() -> std::function<void(size_t)> {
                       return [&body](size_t i) { body(i); };
                     });
}

void TaskExecutor::ParallelForWorkers(
    size_t n, size_t max_parallelism,
    const std::function<std::function<void(size_t)>()>& make_worker) {
  if (n == 0) return;
  if (max_parallelism == 0) max_parallelism = num_threads() + 1;
  if (max_parallelism <= 1 || n == 1) {
    // Sequential fast path on the caller; exceptions propagate directly.
    const std::function<void(size_t)> work = make_worker();
    for (size_t i = 0; i < n; ++i) work(i);
    return;
  }

  auto st = std::make_shared<LoopState>(n);
  st->make_worker = make_worker;
  const size_t helpers = std::min({max_parallelism - 1, num_threads(), n - 1});
  for (size_t h = 0; h < helpers; ++h) {
    Schedule([this, st]() {
      st->active.fetch_add(1, std::memory_order_acq_rel);
      Drain(*st);
      st->active.fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard lock(wake_mutex_);  // fence vs. the caller's wait
      }
      wake_cv_.notify_all();
    });
  }

  Drain(*st);  // the caller always participates

  // Wait until the work is exhausted and no helper is mid-iteration.
  // Helpers still queued are irrelevant (they will no-op), so this join
  // only waits on threads that are actively making progress — which is why
  // ParallelFor may be called while holding locks, as long as the loop
  // *body* does not acquire a lock the caller holds.
  auto finished = [&] {
    return (st->failed.load(std::memory_order_acquire) ||
            st->next.load(std::memory_order_acquire) >= n) &&
           st->active.load(std::memory_order_acquire) == 0;
  };
  while (!finished()) {
    std::unique_lock lock(wake_mutex_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1),
                      [&] { return st->active.load() == 0; });
  }

  // Move the exception out of the shared state before rethrowing: a
  // still-queued late helper releases its LoopState reference on a worker
  // thread, and if that released the *exception object's* last reference
  // too, its deletion would race the catch block reading the exception on
  // this thread (the eh refcount lives in uninstrumented libstdc++, so
  // nothing orders it). Swapped out, the exception lives and dies here.
  std::exception_ptr error;
  {
    std::lock_guard lock(st->error_mutex);
    error = std::move(st->error);
    st->error = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

namespace {

std::mutex g_default_mutex;
std::unique_ptr<TaskExecutor>& DefaultSlot() {
  static std::unique_ptr<TaskExecutor> slot;
  return slot;
}

}  // namespace

TaskExecutor& TaskExecutor::Default() {
  std::lock_guard lock(g_default_mutex);
  std::unique_ptr<TaskExecutor>& slot = DefaultSlot();
  if (slot == nullptr) slot = std::make_unique<TaskExecutor>();
  return *slot;
}

void TaskExecutor::SetDefaultThreads(size_t num_threads) {
  std::lock_guard lock(g_default_mutex);
  std::unique_ptr<TaskExecutor>& slot = DefaultSlot();
  slot.reset();  // drain the old pool first, then build the new one
  slot = std::make_unique<TaskExecutor>(num_threads);
}

}  // namespace dblsh::exec
