# Empty dependencies file for bench_fig8_vary_k.
# This may be replaced when dependencies are built.
