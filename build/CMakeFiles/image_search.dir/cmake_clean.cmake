file(REMOVE_RECURSE
  "CMakeFiles/image_search.dir/examples/image_search.cpp.o"
  "CMakeFiles/image_search.dir/examples/image_search.cpp.o.d"
  "image_search"
  "image_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
