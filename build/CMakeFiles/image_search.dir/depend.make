# Empty dependencies file for image_search.
# This may be replaced when dependencies are built.
