# Empty dependencies file for parameter_tuning.
# This may be replaced when dependencies are built.
