file(REMOVE_RECURSE
  "CMakeFiles/parameter_tuning.dir/examples/parameter_tuning.cpp.o"
  "CMakeFiles/parameter_tuning.dir/examples/parameter_tuning.cpp.o.d"
  "parameter_tuning"
  "parameter_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
