# Empty dependencies file for bench_fig5_7_vary_n.
# This may be replaced when dependencies are built.
