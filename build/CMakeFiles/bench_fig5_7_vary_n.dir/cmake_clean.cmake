file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_7_vary_n.dir/bench/bench_fig5_7_vary_n.cc.o"
  "CMakeFiles/bench_fig5_7_vary_n.dir/bench/bench_fig5_7_vary_n.cc.o.d"
  "bench_fig5_7_vary_n"
  "bench_fig5_7_vary_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_7_vary_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
