# Empty dependencies file for dblsh_bench_common.
# This may be replaced when dependencies are built.
