file(REMOVE_RECURSE
  "CMakeFiles/dblsh_bench_common.dir/bench/common.cc.o"
  "CMakeFiles/dblsh_bench_common.dir/bench/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblsh_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
