
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/e2lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/e2lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/e2lsh.cc.o.d"
  "/root/repo/src/baselines/fb_lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/fb_lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/fb_lsh.cc.o.d"
  "/root/repo/src/baselines/lccs_lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/lccs_lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/lccs_lsh.cc.o.d"
  "/root/repo/src/baselines/linear_scan.cc" "CMakeFiles/dblsh.dir/src/baselines/linear_scan.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/linear_scan.cc.o.d"
  "/root/repo/src/baselines/lsb_forest.cc" "CMakeFiles/dblsh.dir/src/baselines/lsb_forest.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/lsb_forest.cc.o.d"
  "/root/repo/src/baselines/multiprobe_lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/multiprobe_lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/multiprobe_lsh.cc.o.d"
  "/root/repo/src/baselines/pm_lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/pm_lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/pm_lsh.cc.o.d"
  "/root/repo/src/baselines/qalsh.cc" "CMakeFiles/dblsh.dir/src/baselines/qalsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/qalsh.cc.o.d"
  "/root/repo/src/baselines/r2lsh.cc" "CMakeFiles/dblsh.dir/src/baselines/r2lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/r2lsh.cc.o.d"
  "/root/repo/src/baselines/srs.cc" "CMakeFiles/dblsh.dir/src/baselines/srs.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/srs.cc.o.d"
  "/root/repo/src/baselines/vhp.cc" "CMakeFiles/dblsh.dir/src/baselines/vhp.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/baselines/vhp.cc.o.d"
  "/root/repo/src/bptree/bplus_tree.cc" "CMakeFiles/dblsh.dir/src/bptree/bplus_tree.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/bptree/bplus_tree.cc.o.d"
  "/root/repo/src/core/ann_index.cc" "CMakeFiles/dblsh.dir/src/core/ann_index.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/core/ann_index.cc.o.d"
  "/root/repo/src/core/db_lsh.cc" "CMakeFiles/dblsh.dir/src/core/db_lsh.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/core/db_lsh.cc.o.d"
  "/root/repo/src/core/db_lsh_io.cc" "CMakeFiles/dblsh.dir/src/core/db_lsh_io.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/core/db_lsh_io.cc.o.d"
  "/root/repo/src/core/index_factory.cc" "CMakeFiles/dblsh.dir/src/core/index_factory.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/core/index_factory.cc.o.d"
  "/root/repo/src/dataset/ground_truth.cc" "CMakeFiles/dblsh.dir/src/dataset/ground_truth.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/dataset/ground_truth.cc.o.d"
  "/root/repo/src/dataset/io.cc" "CMakeFiles/dblsh.dir/src/dataset/io.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/dataset/io.cc.o.d"
  "/root/repo/src/dataset/stats.cc" "CMakeFiles/dblsh.dir/src/dataset/stats.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/dataset/stats.cc.o.d"
  "/root/repo/src/dataset/synthetic.cc" "CMakeFiles/dblsh.dir/src/dataset/synthetic.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/dataset/synthetic.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/dblsh.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/parallel.cc" "CMakeFiles/dblsh.dir/src/eval/parallel.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/eval/parallel.cc.o.d"
  "/root/repo/src/eval/runner.cc" "CMakeFiles/dblsh.dir/src/eval/runner.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/eval/runner.cc.o.d"
  "/root/repo/src/eval/table.cc" "CMakeFiles/dblsh.dir/src/eval/table.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/eval/table.cc.o.d"
  "/root/repo/src/kdtree/kd_tree.cc" "CMakeFiles/dblsh.dir/src/kdtree/kd_tree.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/kdtree/kd_tree.cc.o.d"
  "/root/repo/src/lsh/collision.cc" "CMakeFiles/dblsh.dir/src/lsh/collision.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/lsh/collision.cc.o.d"
  "/root/repo/src/lsh/params.cc" "CMakeFiles/dblsh.dir/src/lsh/params.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/lsh/params.cc.o.d"
  "/root/repo/src/lsh/projection.cc" "CMakeFiles/dblsh.dir/src/lsh/projection.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/lsh/projection.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "CMakeFiles/dblsh.dir/src/rtree/rtree.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/rtree/rtree.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/dblsh.dir/src/util/status.cc.o" "gcc" "CMakeFiles/dblsh.dir/src/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
