# Empty dependencies file for dblsh.
# This may be replaced when dependencies are built.
