file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lsh.dir/bench/bench_micro_lsh.cc.o"
  "CMakeFiles/bench_micro_lsh.dir/bench/bench_micro_lsh.cc.o.d"
  "bench_micro_lsh"
  "bench_micro_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
