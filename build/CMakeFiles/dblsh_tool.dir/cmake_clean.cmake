file(REMOVE_RECURSE
  "CMakeFiles/dblsh_tool.dir/examples/dblsh_tool.cpp.o"
  "CMakeFiles/dblsh_tool.dir/examples/dblsh_tool.cpp.o.d"
  "dblsh_tool"
  "dblsh_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblsh_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
