# Empty dependencies file for dblsh_tool.
# This may be replaced when dependencies are built.
