# Empty dependencies file for bench_fig9_10_tradeoff.
# This may be replaced when dependencies are built.
