# Empty dependencies file for bench_fig2_regions.
# This may be replaced when dependencies are built.
