file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_regions.dir/bench/bench_fig2_regions.cc.o"
  "CMakeFiles/bench_fig2_regions.dir/bench/bench_fig2_regions.cc.o.d"
  "bench_fig2_regions"
  "bench_fig2_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
