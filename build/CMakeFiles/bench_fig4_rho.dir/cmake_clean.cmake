file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rho.dir/bench/bench_fig4_rho.cc.o"
  "CMakeFiles/bench_fig4_rho.dir/bench/bench_fig4_rho.cc.o.d"
  "bench_fig4_rho"
  "bench_fig4_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
