# Empty dependencies file for bench_fig4_rho.
# This may be replaced when dependencies are built.
