# Empty dependencies file for bench_table4_overview.
# This may be replaced when dependencies are built.
