file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_overview.dir/bench/bench_table4_overview.cc.o"
  "CMakeFiles/bench_table4_overview.dir/bench/bench_table4_overview.cc.o.d"
  "bench_table4_overview"
  "bench_table4_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
