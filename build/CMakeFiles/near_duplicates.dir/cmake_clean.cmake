file(REMOVE_RECURSE
  "CMakeFiles/near_duplicates.dir/examples/near_duplicates.cpp.o"
  "CMakeFiles/near_duplicates.dir/examples/near_duplicates.cpp.o.d"
  "near_duplicates"
  "near_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
