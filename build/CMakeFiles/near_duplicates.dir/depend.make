# Empty dependencies file for near_duplicates.
# This may be replaced when dependencies are built.
