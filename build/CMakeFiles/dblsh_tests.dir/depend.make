# Empty dependencies file for dblsh_tests.
# This may be replaced when dependencies are built.
