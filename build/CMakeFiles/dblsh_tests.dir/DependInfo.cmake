
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "CMakeFiles/dblsh_tests.dir/tests/baselines_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/baselines_test.cc.o.d"
  "/root/repo/tests/bptree_test.cc" "CMakeFiles/dblsh_tests.dir/tests/bptree_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/bptree_test.cc.o.d"
  "/root/repo/tests/dataset_test.cc" "CMakeFiles/dblsh_tests.dir/tests/dataset_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/dataset_test.cc.o.d"
  "/root/repo/tests/db_lsh_test.cc" "CMakeFiles/dblsh_tests.dir/tests/db_lsh_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/db_lsh_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "CMakeFiles/dblsh_tests.dir/tests/eval_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "CMakeFiles/dblsh_tests.dir/tests/extensions_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/extensions_test.cc.o.d"
  "/root/repo/tests/factory_test.cc" "CMakeFiles/dblsh_tests.dir/tests/factory_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/factory_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "CMakeFiles/dblsh_tests.dir/tests/integration_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/integration_test.cc.o.d"
  "/root/repo/tests/kdtree_test.cc" "CMakeFiles/dblsh_tests.dir/tests/kdtree_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/kdtree_test.cc.o.d"
  "/root/repo/tests/lsh_test.cc" "CMakeFiles/dblsh_tests.dir/tests/lsh_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/lsh_test.cc.o.d"
  "/root/repo/tests/property_dblsh_test.cc" "CMakeFiles/dblsh_tests.dir/tests/property_dblsh_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/property_dblsh_test.cc.o.d"
  "/root/repo/tests/property_lsh_test.cc" "CMakeFiles/dblsh_tests.dir/tests/property_lsh_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/property_lsh_test.cc.o.d"
  "/root/repo/tests/property_rtree_test.cc" "CMakeFiles/dblsh_tests.dir/tests/property_rtree_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/property_rtree_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "CMakeFiles/dblsh_tests.dir/tests/robustness_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/robustness_test.cc.o.d"
  "/root/repo/tests/rtree_test.cc" "CMakeFiles/dblsh_tests.dir/tests/rtree_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/rtree_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "CMakeFiles/dblsh_tests.dir/tests/util_test.cc.o" "gcc" "CMakeFiles/dblsh_tests.dir/tests/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
