// Near-duplicate detection with (r,c)-NN queries: the decision-version API
// (Algorithm 1) answers "is there a record within distance r of this one?"
// without paying for a full top-k search — the pattern used in record
// matching / plagiarism / web-page dedup pipelines.
//
//   ./examples/near_duplicates
//
#include <cstdio>

#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/synthetic.h"
#include "util/random.h"

int main() {
  using namespace dblsh;

  // A corpus of 10k feature vectors, then 200 "resubmissions": half are
  // near-duplicates (tiny perturbations of existing records), half are new.
  const size_t dim = 96;
  FloatMatrix corpus = GenerateClustered(
      {.n = 10000, .dim = dim, .clusters = 40, .seed = 99});

  // The decision-version RcNnQuery is DB-LSH-specific, so downcast the
  // factory-made index to reach it.
  auto made = IndexFactory::Make("DB-LSH,c=1.5");
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<AnnIndex> owned = std::move(made).value();
  const DbLsh& index = dynamic_cast<const DbLsh&>(*owned);
  if (Status s = owned->Build(&corpus); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Rng rng(100);
  const double dup_radius = 0.5;  // distance below which we call it a dupe
  size_t true_dupes = 0, flagged_dupes = 0, false_flags = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> candidate(dim);
    const bool is_dupe = (trial % 2 == 0);
    if (is_dupe) {
      const float* base = corpus.row(rng.UniformInt(corpus.rows()));
      for (size_t j = 0; j < dim; ++j) {
        candidate[j] =
            base[j] + static_cast<float>(rng.Gaussian(0.0, 0.01));
      }
      ++true_dupes;
    } else {
      for (size_t j = 0; j < dim; ++j) {
        candidate[j] = static_cast<float>(rng.Uniform(-500.0, 500.0));
      }
    }
    // One (r,c)-NN round: returns a point only if something lies within
    // c*r of the candidate (Definition 2).
    const auto hit = index.RcNnQuery(candidate.data(), dup_radius);
    if (hit.has_value()) {
      if (is_dupe) {
        ++flagged_dupes;
      } else {
        ++false_flags;
      }
    }
  }
  std::printf("Near-duplicate screening of 200 submissions:\n");
  std::printf("  true near-duplicates:    %zu\n", true_dupes);
  std::printf("  flagged as duplicates:   %zu (%.1f%% of true dupes)\n",
              flagged_dupes, 100.0 * double(flagged_dupes) / true_dupes);
  std::printf("  false flags on new data: %zu\n", false_flags);
  std::printf("\n(r,c)-NN gives a probabilistic guarantee: each true "
              "duplicate is flagged with constant probability per round; "
              "repeat rounds to amplify.\n");
  return 0;
}
