// dblsh_tool: command-line front end for the library, the workflow a
// downstream user runs without writing C++:
//
//   dblsh_tool gen   --out=data.fvecs --n=20000 --dim=64 [--clusters=32]
//   dblsh_tool build --data=data.fvecs --index=data.idx [--c=1.5] [--l=5]
//   dblsh_tool query --data=data.fvecs --index=data.idx
//                    --queries=q.fvecs --k=10 [--gt]
//   dblsh_tool stats --data=data.fvecs
//
// `query` prints per-query neighbors; with --gt it also computes exact
// ground truth and reports recall / overall ratio.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/stats.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace dblsh {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: dblsh_tool <gen|build|query|stats> [--flags]\n"
               "  gen    --out=F.fvecs --n=N --dim=D [--clusters=C] "
               "[--spread=S] [--seed=X]\n"
               "  build  --data=F.fvecs --index=F.idx [--c=1.5] [--l=5] "
               "[--k=0] [--t=0]\n"
               "  query  --data=F.fvecs --index=F.idx --queries=Q.fvecs "
               "[--k=10] [--gt]\n"
               "  stats  --data=F.fvecs\n");
  return 2;
}

int RunGen(const Args& args) {
  ClusteredSpec spec;
  spec.n = static_cast<size_t>(args.GetInt("n", 20000));
  spec.dim = static_cast<size_t>(args.GetInt("dim", 64));
  spec.clusters = static_cast<size_t>(args.GetInt("clusters", 32));
  spec.center_spread = args.GetDouble("spread", 30.0);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  const FloatMatrix data = GenerateClustered(spec);
  if (Status s = SaveFvecs(data, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu vectors to %s\n", data.rows(), data.cols(),
              out.c_str());
  return 0;
}

int RunBuild(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  if (data_path.empty() || index_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  DbLshParams params;
  params.c = args.GetDouble("c", 1.5);
  params.l = static_cast<size_t>(args.GetInt("l", 5));
  params.k = static_cast<size_t>(args.GetInt("k", 0));
  params.t = static_cast<size_t>(args.GetInt("t", 0));
  DbLsh index(params);
  Timer timer;
  if (Status s = index.Build(&data.value()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built DB-LSH over %zu points in %.3f s (K=%zu L=%zu t=%zu)\n",
              data.value().rows(), timer.ElapsedSec(), index.params().k,
              index.params().l, index.params().t);
  if (Status s = index.Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved index to %s\n", index_path.c_str());
  return 0;
}

int RunQuery(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  const std::string query_path = args.Get("queries", "");
  if (data_path.empty() || index_path.empty() || query_path.empty()) {
    return Usage();
  }
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto queries = LoadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto index = DbLsh::Load(index_path, &data.value());
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const auto k = static_cast<size_t>(args.GetInt("k", 10));
  const bool with_gt = args.Has("gt");
  double total_ms = 0.0, recall = 0.0, ratio = 0.0;
  for (size_t q = 0; q < queries.value().rows(); ++q) {
    Timer timer;
    const auto result = index.value().Query(queries.value().row(q), k);
    total_ms += timer.ElapsedMs();
    std::printf("query %zu:", q);
    for (const auto& nb : result) std::printf(" %u(%.4f)", nb.id, nb.dist);
    std::printf("\n");
    if (with_gt) {
      const auto gt = ExactKnn(data.value(), queries.value().row(q), k);
      recall += eval::Recall(result, gt);
      ratio += eval::OverallRatio(result, gt);
    }
  }
  const auto denom = static_cast<double>(queries.value().rows());
  std::printf("avg query time: %.3f ms\n", total_ms / denom);
  if (with_gt) {
    std::printf("recall@%zu: %.4f  overall ratio: %.4f\n", k, recall / denom,
                ratio / denom);
  }
  return 0;
}

int RunStats(const Args& args) {
  const std::string data_path = args.Get("data", "");
  if (data_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const DatasetStats stats = EstimateStats(data.value());
  std::printf("n = %zu, dim = %zu\n", data.value().rows(),
              data.value().cols());
  std::printf("mean distance:      %.4f\n", stats.mean_distance);
  std::printf("mean 1-NN distance: %.4f\n", stats.mean_nn_distance);
  std::printf("relative contrast:  %.3f (higher = easier)\n",
              stats.relative_contrast);
  std::printf("LID (MLE):          %.2f (higher = harder)\n", stats.lid);
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  if (argc < 2) return dblsh::Usage();
  const dblsh::Args args(argc, argv);
  const std::string command = argv[1];
  if (command == "gen") return dblsh::RunGen(args);
  if (command == "build") return dblsh::RunBuild(args);
  if (command == "query") return dblsh::RunQuery(args);
  if (command == "stats") return dblsh::RunStats(args);
  return dblsh::Usage();
}
