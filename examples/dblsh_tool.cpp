// dblsh_tool: command-line front end for the library, the workflow a
// downstream user runs without writing C++:
//
//   dblsh_tool methods
//   dblsh_tool gen   --out=data.fvecs --n=20000 --dim=64 [--clusters=32]
//   dblsh_tool build --data=data.fvecs --index=data.idx
//                    [--method="DB-LSH,c=1.5,l=5"]
//   dblsh_tool query --data=data.fvecs --queries=q.fvecs --k=10 [--gt]
//                    [--budget=T] (--index=data.idx | --method="PM-LSH,m=8")
//   dblsh_tool insert --data=data.fvecs --index=data.idx --vectors=v.fvecs
//   dblsh_tool erase  --data=data.fvecs --index=data.idx --ids=3,17,42
//   dblsh_tool stats --data=data.fvecs
//
// `methods` lists every registered index method and its spec keys' home.
// `query` prints per-query neighbors; with --gt it also computes exact
// ground truth and reports recall / overall ratio. With --method the index
// is built in memory from the spec, so any registered method can serve the
// same workload (persistence via --index remains DB-LSH-family only).
// `insert` and `erase` mutate a persisted DB-LSH index in place — no
// rebuild: vectors are appended (or recycled into erased slots) in the
// data file and R*-inserted into the index; erased ids are tombstoned and
// removed from the trees. Both rewrite the touched files on success.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/stats.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace dblsh {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: dblsh_tool <methods|gen|build|query|stats> [--flags]\n"
      "  methods  list registered index methods for --method specs\n"
      "  gen    --out=F.fvecs --n=N --dim=D [--clusters=C] "
      "[--spread=S] [--seed=X]\n"
      "  build  --data=F.fvecs --index=F.idx [--method=SPEC] [--c=1.5] "
      "[--l=5] [--k=0] [--t=0]\n"
      "  query  --data=F.fvecs --queries=Q.fvecs (--index=F.idx | "
      "--method=SPEC) [--k=10] [--budget=T] [--gt]\n"
      "  insert --data=F.fvecs --index=F.idx --vectors=V.fvecs\n"
      "  erase  --data=F.fvecs --index=F.idx --ids=3,17,42\n"
      "  stats  --data=F.fvecs\n"
      "SPEC is an IndexFactory string, e.g. \"DB-LSH,c=1.5,t=40\" or "
      "\"PM-LSH,m=8\".\n"
      "--budget overrides DB-LSH's candidate budget t per query without "
      "rebuilding.\n"
      "insert/erase update the data and index files in place (no "
      "rebuild).\n");
  return 2;
}

int RunMethods() {
  std::printf("Registered index methods (IndexFactory::Make specs):\n");
  for (const std::string& name : IndexFactory::ListMethods()) {
    auto description = IndexFactory::Describe(name);
    std::printf("  %-12s %s\n", name.c_str(),
                description.ok() ? description.value().c_str() : "");
  }
  std::printf("\nSpec grammar: \"Name,key=value,...\" — see README.md.\n");
  return 0;
}

int RunGen(const Args& args) {
  ClusteredSpec spec;
  spec.n = static_cast<size_t>(args.GetInt("n", 20000));
  spec.dim = static_cast<size_t>(args.GetInt("dim", 64));
  spec.clusters = static_cast<size_t>(args.GetInt("clusters", 32));
  spec.center_spread = args.GetDouble("spread", 30.0);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  const FloatMatrix data = GenerateClustered(spec);
  if (Status s = SaveFvecs(data, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu vectors to %s\n", data.rows(), data.cols(),
              out.c_str());
  return 0;
}

int RunBuild(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  if (data_path.empty() || index_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  // Either a full factory spec via --method, or the legacy --c/--l/--k/--t
  // flags applied to the default DB-LSH spec (with --method, put the
  // parameters in the spec itself; mixing the two is rejected so a flag
  // can't silently fight a spec key).
  std::string spec = args.Get("method", "");
  if (spec.empty()) {
    spec = "DB-LSH";
    for (const char* flag : {"c", "l", "k", "t"}) {
      if (args.Has(flag)) {
        spec += std::string(",") + flag + "=" + args.Get(flag, "");
      }
    }
  } else {
    for (const char* flag : {"c", "l", "k", "t"}) {
      if (args.Has(flag)) {
        std::fprintf(stderr,
                     "--%s cannot be combined with --method; add %s=... to "
                     "the spec instead\n",
                     flag, flag);
        return 2;
      }
    }
  }
  auto made = IndexFactory::Make(spec);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  // Persistence check before the (potentially long) build, not after.
  auto* db = dynamic_cast<DbLsh*>(made.value().get());
  if (db == nullptr) {
    std::fprintf(stderr,
                 "persistence is DB-LSH-family only; use `query "
                 "--method=...` to serve %s in memory\n",
                 made.value()->Name().c_str());
    return 1;
  }
  Timer timer;
  if (Status s = made.value()->Build(&data.value()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s over %zu points in %.3f s (%zu hash functions)\n",
              made.value()->Name().c_str(), data.value().rows(),
              timer.ElapsedSec(), made.value()->NumHashFunctions());
  if (Status s = db->Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved index to %s\n", index_path.c_str());
  return 0;
}

int RunQuery(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  const std::string method_spec = args.Get("method", "");
  const std::string query_path = args.Get("queries", "");
  if (data_path.empty() || query_path.empty() ||
      (index_path.empty() == method_spec.empty())) {
    return Usage();
  }
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto queries = LoadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  // Either restore a persisted DB-LSH index or build any registered
  // method in memory from its --method spec.
  std::optional<DbLsh> loaded_index;
  std::unique_ptr<AnnIndex> built_index;
  AnnIndex* index = nullptr;
  if (!index_path.empty()) {
    auto loaded = DbLsh::Load(index_path, &data.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    loaded_index.emplace(std::move(loaded).value());
    index = &*loaded_index;
  } else {
    auto made = IndexFactory::Make(method_spec);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    built_index = std::move(made).value();
    index = built_index.get();
    Timer build_timer;
    if (Status s = index->Build(&data.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("built %s in %.3f s\n", index->Name().c_str(),
                build_timer.ElapsedSec());
  }

  QueryRequest request;
  request.k = static_cast<size_t>(args.GetInt("k", 10));
  request.candidate_budget = static_cast<size_t>(args.GetInt("budget", 0));
  const bool with_gt = args.Has("gt");
  Timer timer;
  const auto responses =
      index->QueryBatch(queries.value(), request, /*num_threads=*/1);
  const double total_ms = timer.ElapsedMs();

  double recall = 0.0, ratio = 0.0, candidates = 0.0;
  for (size_t q = 0; q < responses.size(); ++q) {
    std::printf("query %zu:", q);
    for (const auto& nb : responses[q].neighbors) {
      std::printf(" %u(%.4f)", nb.id, nb.dist);
    }
    std::printf("\n");
    candidates += double(responses[q].stats.candidates_verified);
    if (with_gt) {
      const auto gt =
          ExactKnn(data.value(), queries.value().row(q), request.k);
      recall += eval::Recall(responses[q].neighbors, gt);
      ratio += eval::OverallRatio(responses[q].neighbors, gt);
    }
  }
  const auto denom = static_cast<double>(
      queries.value().rows() ? queries.value().rows() : 1);
  std::printf("avg query time: %.3f ms  avg candidates: %.0f\n",
              total_ms / denom, candidates / denom);
  if (with_gt) {
    std::printf("recall@%zu: %.4f  overall ratio: %.4f\n", request.k,
                recall / denom, ratio / denom);
  }
  return 0;
}

// Shared front half of insert/erase: load the data file and restore the
// persisted index over it. `data` must outlive the returned index.
std::optional<DbLsh> LoadDataAndIndex(const Args& args, FloatMatrix* data,
                                      std::string* data_path,
                                      std::string* index_path) {
  *data_path = args.Get("data", "");
  *index_path = args.Get("index", "");
  if (data_path->empty() || index_path->empty()) return std::nullopt;
  auto loaded_data = LoadFvecs(*data_path);
  if (!loaded_data.ok()) {
    std::fprintf(stderr, "%s\n", loaded_data.status().ToString().c_str());
    return std::nullopt;
  }
  *data = std::move(loaded_data).value();
  auto loaded = DbLsh::Load(*index_path, data);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(loaded).value();
}

int RunInsert(const Args& args) {
  const std::string vectors_path = args.Get("vectors", "");
  if (vectors_path.empty()) return Usage();
  FloatMatrix data;
  std::string data_path, index_path;
  auto index = LoadDataAndIndex(args, &data, &data_path, &index_path);
  if (!index.has_value()) return data_path.empty() ? Usage() : 1;
  auto vectors = LoadFvecs(vectors_path);
  if (!vectors.ok()) {
    std::fprintf(stderr, "%s\n", vectors.status().ToString().c_str());
    return 1;
  }
  if (vectors.value().cols() != data.cols()) {
    std::fprintf(stderr,
                 "dimension mismatch: vectors are %zu-d, dataset is %zu-d\n",
                 vectors.value().cols(), data.cols());
    return 1;
  }
  Timer timer;
  std::printf("inserted ids:");
  for (size_t r = 0; r < vectors.value().rows(); ++r) {
    const uint32_t id = data.InsertRow(vectors.value().row(r), data.cols());
    if (Status s = index->Insert(id); !s.ok()) {
      std::fprintf(stderr, "\n%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(" %u", id);
  }
  std::printf("\ninserted %zu vectors in %.3f s (index now spans %zu live "
              "points)\n",
              vectors.value().rows(), timer.ElapsedSec(), data.live_rows());
  if (Status s = SaveFvecs(data, data_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = index->Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("updated %s and %s\n", data_path.c_str(), index_path.c_str());
  return 0;
}

int RunErase(const Args& args) {
  const std::string ids_arg = args.Get("ids", "");
  if (ids_arg.empty()) return Usage();
  FloatMatrix data;
  std::string data_path, index_path;
  auto index = LoadDataAndIndex(args, &data, &data_path, &index_path);
  if (!index.has_value()) return data_path.empty() ? Usage() : 1;
  size_t erased = 0;
  for (size_t pos = 0; pos < ids_arg.size();) {
    const size_t comma = ids_arg.find(',', pos);
    const std::string token =
        ids_arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
    pos = comma == std::string::npos ? ids_arg.size() : comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
        value > std::numeric_limits<uint32_t>::max()) {
      std::fprintf(stderr, "--ids: \"%s\" is not a valid point id\n",
                   token.c_str());
      return 2;
    }
    const auto id = static_cast<uint32_t>(value);
    // Dataset tombstone first (makes the id unreturnable everywhere), then
    // the structural removal that frees the slot for recycling.
    if (Status s = data.EraseRow(id); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = index->Erase(id); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    ++erased;
  }
  std::printf("erased %zu ids (%zu live points remain)\n", erased,
              data.live_rows());
  if (Status s = index->Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("updated %s (tombstones are stored in the index file; the "
              "data file is unchanged)\n",
              index_path.c_str());
  return 0;
}

int RunStats(const Args& args) {
  const std::string data_path = args.Get("data", "");
  if (data_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const DatasetStats stats = EstimateStats(data.value());
  std::printf("n = %zu, dim = %zu\n", data.value().rows(),
              data.value().cols());
  std::printf("mean distance:      %.4f\n", stats.mean_distance);
  std::printf("mean 1-NN distance: %.4f\n", stats.mean_nn_distance);
  std::printf("relative contrast:  %.3f (higher = easier)\n",
              stats.relative_contrast);
  std::printf("LID (MLE):          %.2f (higher = harder)\n", stats.lid);
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  if (argc < 2) return dblsh::Usage();
  const dblsh::Args args(argc, argv);
  const std::string command = argv[1];
  if (command == "methods") return dblsh::RunMethods();
  if (command == "gen") return dblsh::RunGen(args);
  if (command == "build") return dblsh::RunBuild(args);
  if (command == "query") return dblsh::RunQuery(args);
  if (command == "insert") return dblsh::RunInsert(args);
  if (command == "erase") return dblsh::RunErase(args);
  if (command == "stats") return dblsh::RunStats(args);
  return dblsh::Usage();
}
