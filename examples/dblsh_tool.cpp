// dblsh_tool: command-line front end for the library, the workflow a
// downstream user runs without writing C++:
//
//   dblsh_tool methods
//   dblsh_tool gen   --out=data.fvecs --n=20000 --dim=64 [--clusters=32]
//   dblsh_tool dataset subset  --in=big.bvecs --out=small.fvecs --n=10000
//   dblsh_tool dataset randset --out=data.fvecs --n=20000 --dim=64
//   dblsh_tool build --data=data.fvecs --index=data.idx
//                    [--method="DB-LSH,c=1.5,l=5"]
//   dblsh_tool query --data=data.fvecs --queries=q.fvecs --k=10 [--gt]
//                    [--budget=T] [--threads=N]
//                    (--index=data.idx | --method="PM-LSH,m=8")
//   dblsh_tool collection upsert --data=data.fvecs --index=data.idx
//                                --vectors=v.fvecs
//   dblsh_tool collection delete --data=data.fvecs --index=data.idx
//                                --ids=3,17,42
//   dblsh_tool collection search --data=data.fvecs --queries=q.fvecs
//                                [--indexes="DB-LSH; LinearScan"]
//                                [--use=NAME] [--filter=deny:3,17] [--gt]
//   dblsh_tool stats --data=data.fvecs
//   dblsh_tool serve --data=data.fvecs [--indexes="DB-LSH"] [--port=0]
//                    [--collection=main] [--window-us=1000]
//                    [--duration-ms=0]
//   dblsh_tool serve --replicate-from=host:port --durability=DIR
//                    [--indexes="DB-LSH"] [--port=0]
//   dblsh_tool replication status --server=host:port
//   dblsh_tool ping --server=host:port
//   dblsh_tool collection search --server=host:port --queries=q.fvecs
//   dblsh_tool collection upsert --server=host:port --vectors=v.fvecs
//   dblsh_tool collection delete --server=host:port --ids=3,17,42
//   dblsh_tool stats --server=host:port
//
// `methods` lists every registered index method and its spec keys' home.
// `query` prints per-query neighbors; with --gt it also computes exact
// ground truth and reports recall / overall ratio. With --method the index
// is built in memory from the spec, so any registered method can serve the
// same workload (persistence via --index remains DB-LSH-family only).
//
// The `collection` subcommands drive the Collection façade
// (core/collection.h). `upsert` and `delete` mutate a persisted DB-LSH
// index in place — no rebuild: the collection sequences the dataset write
// and the structural update transactionally, and the touched files are
// rewritten on success. `search` serves any lineup of registered methods
// (`--indexes` is a ';'-separated list of factory specs) with optional
// per-query id filtering: `--filter=deny:IDS` excludes the ids,
// `--filter=allow:IDS` (or a bare id list) restricts results to them.
// `--shards=N`, `--storage=fp32|sq8|pq`, `--m=M`/`--nbits=8` (pq only)
// and `--rerank=N` configure the collection itself (same flags on `serve`
// and `collection stats`): sq8 serves quantized rows at 1 byte/dim, pq at
// --m bytes/row via k-means codebooks + ADC tables; both re-rank with
// exact distances. `collection stats` reports the storage kind and
// bytes/vector uniformly for every backend, locally and via --server.
// `dataset subset` draws a seeded random sample out of an fvecs/bvecs
// file (converting between flavors as the extensions say) and `dataset
// randset` writes seeded synthetic rows — the quick way to cut
// pinned-scale inputs for benches and recall checks.
// The PR-3 commands `insert`/`erase` remain as deprecated aliases of
// `collection upsert`/`collection delete` (each prints a one-line
// deprecation note). Wherever the tool answers queries, `--threads=N`
// (default: the hardware concurrency) sizes the process task executor and
// the query fan-out; pass `--threads=1` when timing per-query latency.
//
// `serve` hosts a collection over the framed-TCP protocol (src/serve/):
// the coalescer micro-batches concurrent client searches into one
// SearchBatch. It runs until SIGINT/SIGTERM (or --duration-ms) and then
// drains gracefully. With `--replicate-from=H:P` the process comes up as
// a read replica of a running primary instead: it bootstraps (or locally
// recovers) its own durable copy under --durability=DIR, tails the
// primary's per-shard WAL streams, and serves reads only — writes are
// refused with the primary's address. `replication status --server=H:P`
// prints a peer's role and per-shard replication lag. The client side of the same commands activates with
// `--server=host:port`: `collection search/upsert/delete`, `stats`, and
// `ping` then talk to a running server instead of local files. Remote
// searches carry an optional `--deadline-ms` budget the server enforces
// before touching the index; `--gt`/`--filter` are local-only (the wire
// protocol does not ship the dataset or filter sets).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "core/db_lsh.h"
#include "exec/task_executor.h"
#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/stats.h"
#include "dataset/synthetic.h"
#include "durability/snapshot.h"
#include "eval/metrics.h"
#include "replication/replica.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/perfmon.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/vecs.h"

namespace dblsh {
namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }
  std::string Get(const std::string& key, const std::string& dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: dblsh_tool <methods|gen|dataset|build|query|collection|stats|"
      "serve|replication|ping> [--flags]\n"
      "  methods  list registered index methods for --method specs\n"
      "  gen    --out=F.fvecs --n=N --dim=D [--clusters=C] "
      "[--spread=S] [--seed=X]\n"
      "  dataset subset  --in=F.{fvecs|bvecs} --out=G.{fvecs|bvecs} --n=N "
      "[--seed=X]\n"
      "                  (seeded random N-row sample; flavors convert "
      "either way)\n"
      "  dataset randset --out=F.{fvecs|bvecs} --n=N --dim=D "
      "[--clusters=C] [--spread=S] [--seed=X]\n"
      "                  (synthetic rows: uniform, or clustered with "
      "--clusters)\n"
      "  build  --data=F.fvecs --index=F.idx [--method=SPEC] [--c=1.5] "
      "[--l=5] [--k=0] [--t=0]\n"
      "  query  --data=F.fvecs --queries=Q.fvecs (--index=F.idx | "
      "--method=SPEC) [--k=10] [--budget=T] [--threads=N] [--gt]\n"
      "  collection upsert --data=F.fvecs --index=F.idx "
      "--vectors=V.fvecs\n"
      "  collection delete --data=F.fvecs --index=F.idx --ids=3,17,42\n"
      "  collection search --data=F.fvecs --queries=Q.fvecs "
      "[--indexes=\"SPEC; SPEC\"] [--use=NAME]\n"
      "                    [--k=10] [--budget=T] [--threads=N] "
      "[--filter=[allow:|deny:]IDS] [--gt]\n"
      "                    [--shards=N] [--storage=fp32|sq8|pq] [--m=M] [--rerank=N]\n"
      "  collection stats --data=F.fvecs [--indexes=\"SPEC; SPEC\"] "
      "[--storage=fp32|sq8|pq] [--m=M] [--rerank=N]\n"
      "                   [--shards=N] | --server=H:P   (storage backend, "
      "bytes/vector, resident MiB)\n"
      "  collection open --durability=DIR [--indexes=\"SPEC; SPEC\"]   "
      "(recover + verify; nonzero on damage)\n"
      "  collection checkpoint (--server=H:P | --durability=DIR)\n"
      "  stats  --data=F.fvecs | --server=H:P\n"
      "  serve  --data=F.fvecs [--indexes=\"SPEC; SPEC\"] "
      "[--collection=main] [--host=A] [--port=0]\n"
      "         [--window-us=1000] [--max-batch=32] [--max-connections=32] "
      "[--threads=N] [--duration-ms=0]\n"
      "         [--shards=N] [--storage=fp32|sq8|pq] [--m=M] [--rerank=N]\n"
      "         [--durability=DIR] [--compact-threshold=R] [--wal-sync=N]\n"
      "         [--replicate-from=H:P]   (read replica; requires "
      "--durability=DIR)\n"
      "  replication status --server=H:P [--collection=main]\n"
      "  ping   --server=H:P\n"
      "SPEC is an IndexFactory string, e.g. \"DB-LSH,c=1.5,t=40\" or "
      "\"PM-LSH,m=8\";\n"
      "collection specs also accept name= and rebuild_threshold= keys.\n"
      "--budget overrides DB-LSH's candidate budget t per query without "
      "rebuilding.\n"
      "--threads sizes the task executor driving batched queries (default: "
      "hardware concurrency; use 1 for per-query latency numbers).\n"
      "collection upsert/delete update the data and index files in place "
      "(no rebuild);\n"
      "the legacy spellings `insert`/`erase` are deprecated aliases.\n"
      "--durability=DIR persists the collection (per-shard snapshot + WAL): "
      "serve seeds it\n"
      "from --data on first run and recovers from DIR afterwards; "
      "--compact-threshold=R\n"
      "rewrites a shard in the background once its tombstone ratio crosses "
      "R; --wal-sync=N\n"
      "groups N WAL appends per fsync (default 1 = sync every commit).\n"
      "With --server=H:P, collection search/upsert/delete and stats talk "
      "to a running\n"
      "`dblsh_tool serve` instance over framed TCP instead of local files "
      "(remote search\n"
      "accepts --collection=NAME and --deadline-ms=B; --gt/--filter stay "
      "local-only).\n"
      "serve --replicate-from=H:P follows a running primary as a read "
      "replica: it\n"
      "bootstraps (or recovers) its own copy under --durability=DIR, tails "
      "the primary's\n"
      "WAL, and refuses writes; the local spec flags must match the "
      "primary's geometry.\n");
  return 2;
}

// Parses a comma-separated id list ("3,17,42") into `out`; prints the
// offending token and returns false on garbage.
bool ParseIdList(const std::string& text, const char* flag,
                 std::vector<uint32_t>* out) {
  for (size_t pos = 0; pos < text.size();) {
    const size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
        value > std::numeric_limits<uint32_t>::max()) {
      std::fprintf(stderr, "%s: \"%s\" is not a valid point id\n", flag,
                   token.c_str());
      return false;
    }
    out->push_back(static_cast<uint32_t>(value));
  }
  return true;
}

// Parses --filter=[allow:|deny:]IDS into a QueryFilter (bare id lists are
// allow-lists). Returns false on parse failure.
bool ParseFilter(const std::string& text, QueryFilter* out) {
  std::string ids = text;
  bool deny = false;
  if (ids.rfind("deny:", 0) == 0) {
    deny = true;
    ids = ids.substr(5);
  } else if (ids.rfind("allow:", 0) == 0) {
    ids = ids.substr(6);
  }
  std::vector<uint32_t> parsed;
  if (!ParseIdList(ids, "--filter", &parsed)) return false;
  if (parsed.empty()) {
    std::fprintf(stderr, "--filter: no ids given\n");
    return false;
  }
  *out = deny ? QueryFilter::Deny(parsed) : QueryFilter::AllowOnly(parsed);
  return true;
}

// Applies --threads (default: hardware concurrency) to the process-wide
// task executor — the pool every batched query in the tool fans out on —
// and returns the parallelism to request per batch.
size_t ConfigureThreads(const Args& args) {
  const auto threads = static_cast<size_t>(args.GetInt("threads", 0));
  if (args.Has("threads")) exec::TaskExecutor::SetDefaultThreads(threads);
  return threads == 0 ? exec::HardwareConcurrency() : threads;
}

// Collection spec prefix from the shared --shards/--storage/--m/--nbits/
// --rerank flags (collection search / serve / collection stats all accept
// them). --m/--nbits only make sense with --storage=pq; FromSpec rejects
// them otherwise with a typed message.
std::string CollectionPrefix(const Args& args) {
  std::string prefix = "collection";
  if (args.Has("shards")) prefix += ",shards=" + args.Get("shards", "1");
  if (args.Has("storage")) prefix += ",storage=" + args.Get("storage", "");
  if (args.Has("m")) prefix += ",m=" + args.Get("m", "16");
  if (args.Has("nbits")) prefix += ",nbits=" + args.Get("nbits", "8");
  if (args.Has("rerank")) prefix += ",rerank=" + args.Get("rerank", "4");
  if (args.Has("durability")) {
    prefix += ",durability=" + args.Get("durability", "");
  }
  if (args.Has("compact-threshold")) {
    prefix += ",compact_threshold=" + args.Get("compact-threshold", "");
  }
  if (args.Has("wal-sync")) prefix += ",wal_sync=" + args.Get("wal-sync", "1");
  return prefix;
}

// Splits --server=HOST:PORT ("PORT" alone means loopback). Returns false
// (with a message) on garbage.
bool ParseServer(const std::string& text, std::string* host,
                 uint16_t* port) {
  const size_t colon = text.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? text : text.substr(colon + 1);
  *host = colon == std::string::npos ? "127.0.0.1" : text.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == port_text.c_str() || *end != '\0' ||
      errno == ERANGE || value == 0 || value > 65535) {
    std::fprintf(stderr, "--server: \"%s\" is not HOST:PORT\n",
                 text.c_str());
    return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

// Connects to the --server target; nullptr (message printed) on failure.
std::unique_ptr<serve::Client> ConnectServer(const Args& args) {
  std::string host;
  uint16_t port = 0;
  if (!ParseServer(args.Get("server", ""), &host, &port)) return nullptr;
  auto client = serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return nullptr;
  }
  return std::move(client).value();
}

// SIGINT/SIGTERM flip this; the serve loop polls it (a signal handler can
// only touch lock-free state).
std::atomic<bool> g_serve_stop{false};
void OnServeSignal(int) { g_serve_stop.store(true); }

int RunServe(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string durability_dir = args.Get("durability", "");
  const std::string replicate_from = args.Get("replicate-from", "");
  // Executor first (see RunCollectionSearch for why), then the collection.
  ConfigureThreads(args);
  const std::string indexes = args.Get("indexes", "DB-LSH");
  const std::string spec = CollectionPrefix(args) + ": " + indexes;
  const std::string name = args.Get("collection", "main");
  Timer build_timer;
  std::unique_ptr<Collection> owned;
  std::unique_ptr<replication::Replica> replica;
  if (!replicate_from.empty()) {
    // Follower mode: bootstrap (or locally recover) a read replica of the
    // primary at --replicate-from and serve reads from it.
    if (durability_dir.empty()) {
      std::fprintf(stderr,
                   "serve --replicate-from requires --durability=DIR (the "
                   "replica's own directory)\n");
      return 2;
    }
    replication::ReplicaOptions ropts;
    if (!ParseServer(replicate_from, &ropts.primary_host,
                     &ropts.primary_port)) {
      return 2;
    }
    ropts.collection = name;
    ropts.spec = spec;
    ropts.dir = durability_dir;
    auto started = replication::Replica::Start(ropts);
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start replica of %s: %s\n",
                   replicate_from.c_str(),
                   started.status().ToString().c_str());
      return 1;
    }
    replica = std::move(started).value();
    std::printf("replicating \"%s\" from %s into %s (%zu points at "
                "subscribe time)\n",
                name.c_str(), replicate_from.c_str(), durability_dir.c_str(),
                replica->collection()->size());
  } else if (!durability_dir.empty() &&
      durability::LoadManifest(durability_dir).ok()) {
    // The directory already holds a collection: recover it (snapshot +
    // WAL replay) instead of seeding from --data. A corrupt manifest
    // falls through to FromSpec below, which refuses to clobber it.
    if (!data_path.empty()) {
      std::fprintf(stderr,
                   "note: %s already holds a collection; --data is ignored "
                   "(recovering the persisted state)\n",
                   durability_dir.c_str());
    }
    auto opened = Collection::Open(spec);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open collection at %s: %s\n",
                   durability_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).value();
    const CollectionDurabilityInfo d = owned->Durability();
    std::printf("recovered %zu live points from %s "
                "(replayed %llu WAL record(s) in %.3f ms)\n",
                owned->size(), durability_dir.c_str(),
                static_cast<unsigned long long>(d.replayed_records),
                d.recovery_ms);
  } else {
    if (data_path.empty()) return Usage();
    auto data = LoadFvecs(data_path);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    auto made = Collection::FromSpec(
        spec, std::make_unique<FloatMatrix>(std::move(data).value()));
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    owned = std::move(made).value();
  }
  Collection& collection =
      replica != nullptr ? *replica->collection() : *owned;

  serve::ServerOptions options;
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(args.GetInt("port", 0));
  options.max_connections =
      static_cast<size_t>(args.GetInt("max-connections", 32));
  options.coalescer.window_us =
      static_cast<uint32_t>(args.GetInt("window-us", 1000));
  options.coalescer.max_batch =
      static_cast<size_t>(args.GetInt("max-batch", 32));
  if (replica != nullptr) {
    replication::Replica* raw = replica.get();
    options.replication_report = [raw] { return raw->Report(); };
  }
  auto server = serve::Server::Start({{name, &collection}}, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving collection \"%s\" (%zu points, built in %.3f s) on "
              "%s:%u\n",
              name.c_str(), collection.size(), build_timer.ElapsedSec(),
              options.host.c_str(), unsigned{server.value()->port()});
  std::printf("window %u us, batch cap %zu, %zu connections max; "
              "Ctrl-C to drain and exit\n",
              options.coalescer.window_us, options.coalescer.max_batch,
              options.max_connections);
  std::fflush(stdout);

  const int64_t duration_ms = args.GetInt("duration-ms", 0);
  std::signal(SIGINT, OnServeSignal);
  std::signal(SIGTERM, OnServeSignal);
  Timer timer;
  while (!g_serve_stop.load()) {
    if (duration_ms > 0 && timer.ElapsedMs() >= double(duration_ms)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.value()->Shutdown();
  if (replica != nullptr) {
    // Stop tailing before the final checkpoint so no stream applies race
    // the rotation; the checkpointed state re-subscribes from its LSNs on
    // the next start.
    replica->Stop();
    const std::string err = replica->FirstError();
    if (!err.empty()) {
      std::fprintf(stderr, "replication error: %s\n", err.c_str());
    }
  }
  if (collection.Durability().enabled) {
    // Final checkpoint on a clean drain: the next open replays no WAL.
    if (Status s = collection.Checkpoint(); !s.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   s.ToString().c_str());
    }
  }
  const serve::ServerStats stats = server.value()->Stats();
  std::printf("drained after %.1f s: %llu requests (%llu searches, "
              "%llu upserts, %llu deletes), mean batch %.2f, "
              "%llu shed, %llu deadline-rejected, %llu protocol errors\n",
              timer.ElapsedSec(),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.searches),
              static_cast<unsigned long long>(stats.upserts),
              static_cast<unsigned long long>(stats.deletes),
              stats.mean_batch_size,
              static_cast<unsigned long long>(stats.shed_overload),
              static_cast<unsigned long long>(stats.rejected_deadline),
              static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}

int RunPing(const Args& args) {
  if (!args.Has("server")) return Usage();
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  Timer timer;
  if (Status s = client->Ping(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pong in %.3f ms\n", timer.ElapsedMs());
  return 0;
}

// collection search --server=H:P: ships the whole query file as one
// SearchBatch RPC (the server dispatches it without a window hold).
int RunRemoteSearch(const Args& args) {
  const std::string query_path = args.Get("queries", "");
  if (query_path.empty()) return Usage();
  if (args.Has("gt") || args.Has("filter")) {
    std::fprintf(stderr,
                 "--gt/--filter are local-only; the wire protocol does not "
                 "ship the dataset or filter sets\n");
    return 2;
  }
  auto queries = LoadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  QueryRequest request;
  request.k = static_cast<size_t>(args.GetInt("k", 10));
  request.candidate_budget = static_cast<size_t>(args.GetInt("budget", 0));
  const auto deadline_us =
      static_cast<uint32_t>(args.GetInt("deadline-ms", 0) * 1000);
  const std::string name = args.Get("collection", "main");
  Timer timer;
  auto responses =
      client->SearchBatch(name, queries.value(), request, deadline_us);
  const double total_ms = timer.ElapsedMs();
  if (!responses.ok()) {
    std::fprintf(stderr, "%s\n", responses.status().ToString().c_str());
    return responses.status().retryable() ? 3 : 1;
  }
  double candidates = 0.0;
  for (size_t q = 0; q < responses.value().size(); ++q) {
    std::printf("query %zu:", q);
    for (const auto& nb : responses.value()[q].neighbors) {
      std::printf(" %u(%.4f)", nb.id, nb.dist);
    }
    std::printf("\n");
    candidates += double(responses.value()[q].stats.candidates_verified);
  }
  const auto denom = static_cast<double>(
      queries.value().rows() ? queries.value().rows() : 1);
  std::printf("avg round-trip: %.3f ms/query (one batched RPC)  "
              "avg candidates: %.0f\n",
              total_ms / denom, candidates / denom);
  return 0;
}

int RunRemoteUpsert(const Args& args) {
  const std::string vectors_path = args.Get("vectors", "");
  if (vectors_path.empty()) return Usage();
  auto vectors = LoadFvecs(vectors_path);
  if (!vectors.ok()) {
    std::fprintf(stderr, "%s\n", vectors.status().ToString().c_str());
    return 1;
  }
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  const std::string name = args.Get("collection", "main");
  Timer timer;
  std::printf("upserted ids:");
  for (size_t r = 0; r < vectors.value().rows(); ++r) {
    auto up = client->Upsert(name, vectors.value().row(r),
                             vectors.value().cols());
    if (!up.ok()) {
      std::fprintf(stderr, "\n%s\n", up.status().ToString().c_str());
      return 1;
    }
    std::printf(" %u", up.value());
  }
  std::printf("\nupserted %zu vectors in %.3f s (server-side; files on the "
              "serving host are unchanged until it persists)\n",
              vectors.value().rows(), timer.ElapsedSec());
  return 0;
}

int RunRemoteDelete(const Args& args) {
  const std::string ids_arg = args.Get("ids", "");
  if (ids_arg.empty()) return Usage();
  std::vector<uint32_t> ids;
  if (!ParseIdList(ids_arg, "--ids", &ids)) return 2;
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  const std::string name = args.Get("collection", "main");
  for (const uint32_t id : ids) {
    if (Status s = client->Delete(name, id); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("deleted %zu ids on the server\n", ids.size());
  return 0;
}

int RunRemoteStats(const Args& args) {
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  for (const auto& c : stats.value().collections) {
    std::printf("collection \"%s\": %llu live vectors, epoch %llu, "
                "%u shard(s)\n",
                c.name.c_str(),
                static_cast<unsigned long long>(c.live_vectors),
                static_cast<unsigned long long>(c.epoch), c.shards);
    std::printf("  storage: %s, %llu bytes/vector, %.2f MiB resident",
                c.storage.c_str(),
                static_cast<unsigned long long>(c.bytes_per_vector),
                static_cast<double>(c.resident_bytes) / (1024.0 * 1024.0));
    if (c.rerank > 0) std::printf(", rerank x%u", c.rerank);
    std::printf("\n");
    if (c.durable) {
      std::printf("  durability: %llu checkpoint(s), %llu compaction(s), "
                  "%llu WAL append(s), %llu record(s) replayed at open "
                  "(%.3f ms)\n",
                  static_cast<unsigned long long>(c.checkpoints),
                  static_cast<unsigned long long>(c.compactions),
                  static_cast<unsigned long long>(c.wal_appends),
                  static_cast<unsigned long long>(c.replayed_records),
                  c.recovery_ms);
    }
  }
  const serve::ServerStats& s = stats.value().server;
  std::printf("connections: %llu accepted, %llu rejected, %llu active\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.connections_rejected),
              static_cast<unsigned long long>(s.connections_active));
  std::printf("requests: %llu (%llu searches, %llu upserts, %llu deletes, "
              "%llu protocol errors)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.searches),
              static_cast<unsigned long long>(s.upserts),
              static_cast<unsigned long long>(s.deletes),
              static_cast<unsigned long long>(s.protocol_errors));
  std::printf("coalescing: %llu batches over %llu queries "
              "(mean %.2f, max %llu); %llu shed, %llu deadline-rejected\n",
              static_cast<unsigned long long>(s.batches_dispatched),
              static_cast<unsigned long long>(s.batched_queries),
              s.mean_batch_size,
              static_cast<unsigned long long>(s.max_batch_size),
              static_cast<unsigned long long>(s.shed_overload),
              static_cast<unsigned long long>(s.rejected_deadline));
  return 0;
}

int RunMethods() {
  std::printf("Registered index methods (IndexFactory::Make specs):\n");
  for (const std::string& name : IndexFactory::ListMethods()) {
    auto description = IndexFactory::Describe(name);
    std::printf("  %-12s %s\n", name.c_str(),
                description.ok() ? description.value().c_str() : "");
  }
  std::printf("\nSpec grammar: \"Name,key=value,...\" — see README.md.\n");
  return 0;
}

int RunGen(const Args& args) {
  ClusteredSpec spec;
  spec.n = static_cast<size_t>(args.GetInt("n", 20000));
  spec.dim = static_cast<size_t>(args.GetInt("dim", 64));
  spec.clusters = static_cast<size_t>(args.GetInt("clusters", 32));
  spec.center_spread = args.GetDouble("spread", 30.0);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  const FloatMatrix data = GenerateClustered(spec);
  if (Status s = SaveFvecs(data, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu vectors to %s\n", data.rows(), data.cols(),
              out.c_str());
  return 0;
}

// True when `path` names a `.bvecs` file (case-sensitive, like the rest
// of the TEXMEX ecosystem).
bool IsBvecsPath(const std::string& path) {
  const std::string ext = ".bvecs";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

// Writes `count` rows of `dim` floats to `path` in the extension's vecs
// flavor: fvecs verbatim, bvecs rounded and clamped to [0, 255].
int WriteVecsRows(const std::string& path, const float* values, size_t count,
                  size_t dim) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  const bool bvecs = IsBvecsPath(path);
  const int32_t d = static_cast<int32_t>(dim);
  std::vector<uint8_t> bytes(bvecs ? dim : 0);
  bool ok = true;
  for (size_t i = 0; i < count && ok; ++i) {
    const float* row = values + i * dim;
    ok = std::fwrite(&d, sizeof(d), 1, out) == 1;
    if (!ok) break;
    if (bvecs) {
      for (size_t j = 0; j < dim; ++j) {
        const float v = std::nearbyint(row[j]);
        bytes[j] = static_cast<uint8_t>(v < 0.f ? 0.f : v > 255.f ? 255.f
                                                                  : v);
      }
      ok = std::fwrite(bytes.data(), 1, dim, out) == dim;
    } else {
      ok = std::fwrite(row, sizeof(float), dim, out) == dim;
    }
  }
  if (std::fclose(out) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

// dataset subset: extracts a seeded random sample of N rows from an
// fvecs/bvecs file into an fvecs/bvecs file (input and output flavors are
// independent; bvecs components are widened/clamped as needed). File
// order is preserved within the sample so repeated runs with one seed are
// byte-identical.
int RunDatasetSubset(const Args& args) {
  const std::string in_path = args.Get("in", "");
  const std::string out_path = args.Get("out", "");
  const size_t n = static_cast<size_t>(args.GetInt("n", 0));
  if (in_path.empty() || out_path.empty() || n == 0) return Usage();
  auto data = IsBvecsPath(in_path) ? util::ReadBvecsAsFloat(in_path)
                                   : util::ReadFvecs(in_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const util::FvecsData& rows = data.value();
  if (rows.count() < n) {
    std::fprintf(stderr,
                 "dataset subset: asked for %zu rows but %s holds %zu\n", n,
                 in_path.c_str(), rows.count());
    return 1;
  }
  // Partial Fisher-Yates over the index array: the first n entries are a
  // uniform sample without replacement; sorting keeps file order.
  std::vector<uint32_t> pick(rows.count());
  for (size_t i = 0; i < pick.size(); ++i) {
    pick[i] = static_cast<uint32_t>(i);
  }
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)));
  for (size_t i = 0; i < n; ++i) {
    const size_t j = i + rng.UniformInt(pick.size() - i);
    std::swap(pick[i], pick[j]);
  }
  std::sort(pick.begin(), pick.begin() + static_cast<ptrdiff_t>(n));
  std::vector<float> sample(n * rows.dim);
  for (size_t i = 0; i < n; ++i) {
    const float* src = rows.values.data() + pick[i] * rows.dim;
    std::copy(src, src + rows.dim, sample.data() + i * rows.dim);
  }
  if (int rc = WriteVecsRows(out_path, sample.data(), n, rows.dim); rc != 0) {
    return rc;
  }
  std::printf("wrote %zu of %zu vectors (dim %zu) from %s to %s\n", n,
              rows.count(), rows.dim, in_path.c_str(), out_path.c_str());
  return 0;
}

// dataset randset: seeded synthetic generation straight to an fvecs/bvecs
// file — uniform rows by default (the hard, structureless regime),
// clustered Gaussian-mixture rows with --clusters=C (like `gen`).
int RunDatasetRandset(const Args& args) {
  const std::string out_path = args.Get("out", "");
  const size_t n = static_cast<size_t>(args.GetInt("n", 0));
  const size_t dim = static_cast<size_t>(args.GetInt("dim", 0));
  if (out_path.empty() || n == 0 || dim == 0) return Usage();
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  // Default spread 200 keeps uniform rows inside bvecs' [0, 255] range.
  const double spread = args.GetDouble("spread", 200.0);
  FloatMatrix data(0, 0);
  if (args.Has("clusters")) {
    ClusteredSpec spec;
    spec.n = n;
    spec.dim = dim;
    spec.clusters = static_cast<size_t>(args.GetInt("clusters", 32));
    spec.center_spread = spread;
    spec.seed = seed;
    data = GenerateClustered(spec);
  } else {
    data = GenerateUniform(n, dim, spread, seed);
  }
  if (int rc = WriteVecsRows(out_path, data.data().data(), data.rows(),
                             data.cols());
      rc != 0) {
    return rc;
  }
  std::printf("wrote %zu x %zu synthetic vectors to %s\n", data.rows(),
              data.cols(), out_path.c_str());
  return 0;
}

int RunDataset(int argc, char** argv, const Args& args) {
  const std::string sub = argc >= 3 ? argv[2] : "";
  if (sub == "subset") return RunDatasetSubset(args);
  if (sub == "randset") return RunDatasetRandset(args);
  return Usage();
}

int RunBuild(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  if (data_path.empty() || index_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  // Either a full factory spec via --method, or the legacy --c/--l/--k/--t
  // flags applied to the default DB-LSH spec (with --method, put the
  // parameters in the spec itself; mixing the two is rejected so a flag
  // can't silently fight a spec key).
  std::string spec = args.Get("method", "");
  if (spec.empty()) {
    spec = "DB-LSH";
    for (const char* flag : {"c", "l", "k", "t"}) {
      if (args.Has(flag)) {
        spec += std::string(",") + flag + "=" + args.Get(flag, "");
      }
    }
  } else {
    for (const char* flag : {"c", "l", "k", "t"}) {
      if (args.Has(flag)) {
        std::fprintf(stderr,
                     "--%s cannot be combined with --method; add %s=... to "
                     "the spec instead\n",
                     flag, flag);
        return 2;
      }
    }
  }
  auto made = IndexFactory::Make(spec);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  // Persistence check before the (potentially long) build, not after.
  auto* db = dynamic_cast<DbLsh*>(made.value().get());
  if (db == nullptr) {
    std::fprintf(stderr,
                 "persistence is DB-LSH-family only; use `query "
                 "--method=...` to serve %s in memory\n",
                 made.value()->Name().c_str());
    return 1;
  }
  Timer timer;
  if (Status s = made.value()->Build(&data.value()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s over %zu points in %.3f s (%zu hash functions)\n",
              made.value()->Name().c_str(), data.value().rows(),
              timer.ElapsedSec(), made.value()->NumHashFunctions());
  if (Status s = db->Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved index to %s\n", index_path.c_str());
  return 0;
}

int RunQuery(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string index_path = args.Get("index", "");
  const std::string method_spec = args.Get("method", "");
  const std::string query_path = args.Get("queries", "");
  if (data_path.empty() || query_path.empty() ||
      (index_path.empty() == method_spec.empty())) {
    return Usage();
  }
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto queries = LoadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  // Either restore a persisted DB-LSH index or build any registered
  // method in memory from its --method spec.
  std::optional<DbLsh> loaded_index;
  std::unique_ptr<AnnIndex> built_index;
  AnnIndex* index = nullptr;
  if (!index_path.empty()) {
    auto loaded = DbLsh::Load(index_path, &data.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    loaded_index.emplace(std::move(loaded).value());
    index = &*loaded_index;
  } else {
    auto made = IndexFactory::Make(method_spec);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    built_index = std::move(made).value();
    index = built_index.get();
    Timer build_timer;
    if (Status s = index->Build(&data.value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("built %s in %.3f s\n", index->Name().c_str(),
                build_timer.ElapsedSec());
  }

  QueryRequest request;
  request.k = static_cast<size_t>(args.GetInt("k", 10));
  request.candidate_budget = static_cast<size_t>(args.GetInt("budget", 0));
  const size_t threads = ConfigureThreads(args);
  const bool with_gt = args.Has("gt");
  Timer timer;
  const auto responses = index->QueryBatch(queries.value(), request, threads);
  const double total_ms = timer.ElapsedMs();

  double recall = 0.0, ratio = 0.0, candidates = 0.0;
  for (size_t q = 0; q < responses.size(); ++q) {
    std::printf("query %zu:", q);
    for (const auto& nb : responses[q].neighbors) {
      std::printf(" %u(%.4f)", nb.id, nb.dist);
    }
    std::printf("\n");
    candidates += double(responses[q].stats.candidates_verified);
    if (with_gt) {
      const auto gt =
          ExactKnn(data.value(), queries.value().row(q), request.k);
      recall += eval::Recall(responses[q].neighbors, gt);
      ratio += eval::OverallRatio(responses[q].neighbors, gt);
    }
  }
  const auto denom = static_cast<double>(
      queries.value().rows() ? queries.value().rows() : 1);
  std::printf("avg wall time: %.3f ms/query over %zu threads  "
              "avg candidates: %.0f\n",
              total_ms / denom, threads, candidates / denom);
  if (with_gt) {
    std::printf("recall@%zu: %.4f  overall ratio: %.4f\n", request.k,
                recall / denom, ratio / denom);
  }
  return 0;
}

// Shared front half of collection upsert/delete: load the data file, adopt
// the persisted DB-LSH index into a Collection under the slot name "main"
// — no rebuild, the loaded structures serve as-is.
std::unique_ptr<Collection> LoadCollection(const Args& args,
                                           std::string* data_path,
                                           std::string* index_path) {
  *data_path = args.Get("data", "");
  *index_path = args.Get("index", "");
  if (data_path->empty() || index_path->empty()) return nullptr;
  auto loaded_data = LoadFvecs(*data_path);
  if (!loaded_data.ok()) {
    std::fprintf(stderr, "%s\n", loaded_data.status().ToString().c_str());
    return nullptr;
  }
  auto data =
      std::make_unique<FloatMatrix>(std::move(loaded_data).value());
  auto loaded = DbLsh::Load(*index_path, data.get());
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return nullptr;
  }
  auto collection = std::make_unique<Collection>(std::move(data));
  Status s = collection->AddPrebuiltIndex(
      "main", std::make_unique<DbLsh>(std::move(loaded).value()));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return nullptr;
  }
  return collection;
}

// Persists the collection's state back to the files the session loaded:
// the data file when `rewrite_data` (upserts change rows), and always the
// index file (it stores the tombstone set).
int SaveCollection(const Collection& collection, const std::string& data_path,
                   const std::string& index_path, bool rewrite_data) {
  if (rewrite_data) {
    if (Status s = SaveFvecs(collection.Snapshot(), data_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  const auto* db = dynamic_cast<const DbLsh*>(collection.GetIndex("main"));
  if (Status s = db->Save(index_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunCollectionUpsert(const Args& args) {
  const std::string vectors_path = args.Get("vectors", "");
  if (vectors_path.empty()) return Usage();
  std::string data_path, index_path;
  auto collection = LoadCollection(args, &data_path, &index_path);
  if (collection == nullptr) return data_path.empty() ? Usage() : 1;
  auto vectors = LoadFvecs(vectors_path);
  if (!vectors.ok()) {
    std::fprintf(stderr, "%s\n", vectors.status().ToString().c_str());
    return 1;
  }
  Timer timer;
  std::printf("upserted ids:");
  for (size_t r = 0; r < vectors.value().rows(); ++r) {
    auto up = collection->Upsert(vectors.value().row(r),
                                 vectors.value().cols());
    if (!up.ok()) {
      std::fprintf(stderr, "\n%s\n", up.status().ToString().c_str());
      return 1;
    }
    std::printf(" %u", up.value());
  }
  std::printf("\nupserted %zu vectors in %.3f s (collection now serves %zu "
              "live points)\n",
              vectors.value().rows(), timer.ElapsedSec(),
              collection->size());
  if (int rc = SaveCollection(*collection, data_path, index_path,
                              /*rewrite_data=*/true); rc != 0) {
    return rc;
  }
  std::printf("updated %s and %s\n", data_path.c_str(), index_path.c_str());
  return 0;
}

int RunCollectionDelete(const Args& args) {
  const std::string ids_arg = args.Get("ids", "");
  if (ids_arg.empty()) return Usage();
  std::string data_path, index_path;
  auto collection = LoadCollection(args, &data_path, &index_path);
  if (collection == nullptr) return data_path.empty() ? Usage() : 1;
  std::vector<uint32_t> ids;
  if (!ParseIdList(ids_arg, "--ids", &ids)) return 2;
  for (const uint32_t id : ids) {
    if (Status s = collection->Delete(id); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("deleted %zu ids (%zu live points remain)\n", ids.size(),
              collection->size());
  if (int rc = SaveCollection(*collection, data_path, index_path,
                              /*rewrite_data=*/false); rc != 0) {
    return rc;
  }
  std::printf("updated %s (tombstones are stored in the index file; the "
              "data file is unchanged)\n",
              index_path.c_str());
  return 0;
}

int RunCollectionSearch(const Args& args) {
  const std::string data_path = args.Get("data", "");
  const std::string query_path = args.Get("queries", "");
  if (data_path.empty() || query_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto queries = LoadFvecs(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  QueryRequest request;
  request.k = static_cast<size_t>(args.GetInt("k", 10));
  request.candidate_budget = static_cast<size_t>(args.GetInt("budget", 0));
  const std::string filter_arg = args.Get("filter", "");
  if (!filter_arg.empty() && !ParseFilter(filter_arg, &request.filter)) {
    return 2;
  }

  // Size the executor BEFORE the collection captures a reference to it
  // (SetDefaultThreads replaces the default pool; a collection built first
  // would be left pointing at the destroyed one).
  const size_t threads = ConfigureThreads(args);

  const std::string indexes = args.Get("indexes", "DB-LSH");
  Timer build_timer;
  auto made = Collection::FromSpec(
      CollectionPrefix(args) + ": " + indexes,
      std::make_unique<FloatMatrix>(std::move(data).value()));
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *made.value();
  std::printf("collection over %zu points built in %.3f s; serving via %s\n",
              collection.size(), build_timer.ElapsedSec(),
              args.Has("use") ? args.Get("use", "").c_str()
                              : "best-capable index");

  const std::string use = args.Get("use", "");
  const bool with_gt = args.Has("gt");
  Timer timer;
  auto responses =
      collection.SearchBatch(queries.value(), request, use, threads);
  const double total_ms = timer.ElapsedMs();
  if (!responses.ok()) {
    std::fprintf(stderr, "%s\n", responses.status().ToString().c_str());
    return 1;
  }

  // Ground truth respects the same filter (the oracle a filtered serving
  // path is judged against).
  const FloatMatrix snapshot = with_gt ? collection.Snapshot() : FloatMatrix();
  double recall = 0.0, ratio = 0.0, candidates = 0.0;
  for (size_t q = 0; q < responses.value().size(); ++q) {
    const QueryResponse& response = responses.value()[q];
    std::printf("query %zu:", q);
    for (const auto& nb : response.neighbors) {
      std::printf(" %u(%.4f)", nb.id, nb.dist);
    }
    std::printf("\n");
    candidates += double(response.stats.candidates_verified);
    if (with_gt) {
      ScopedQueryFilter gt_filter(&request.filter);
      const auto gt = ExactKnn(snapshot, queries.value().row(q), request.k);
      recall += eval::Recall(response.neighbors, gt);
      ratio += eval::OverallRatio(response.neighbors, gt);
    }
  }
  const auto denom = static_cast<double>(
      queries.value().rows() ? queries.value().rows() : 1);
  std::printf("avg wall time: %.3f ms/query over %zu threads  "
              "avg candidates: %.0f\n",
              total_ms / denom, threads, candidates / denom);
  if (with_gt) {
    std::printf("recall@%zu: %.4f  overall ratio: %.4f\n", request.k,
                recall / denom, ratio / denom);
  }
  return 0;
}

// collection stats --data=F.fvecs: builds the collection locally and
// reports the storage backend — kind, bytes/vector, per-shard resident
// bytes — plus the process RSS, the numbers the bench JSON memory bands
// are pinned on. The interesting comparison is --storage=sq8 vs the fp32
// default over the same data.
int RunCollectionStats(const Args& args) {
  const std::string data_path = args.Get("data", "");
  if (data_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const std::string prefix = CollectionPrefix(args);
  const std::string indexes = args.Get("indexes", "DB-LSH");
  Timer build_timer;
  auto made = Collection::FromSpec(
      prefix + ": " + indexes,
      std::make_unique<FloatMatrix>(std::move(data).value()));
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *made.value();
  const CollectionStorageInfo storage = collection.Storage();
  std::printf("collection over %zu points (dim %zu) built in %.3f s\n",
              collection.size(), collection.dim(), build_timer.ElapsedSec());
  std::printf("storage: %s, %zu bytes/vector", storage.kind.c_str(),
              storage.bytes_per_vector);
  if (storage.rerank > 0) std::printf(", rerank x%zu", storage.rerank);
  std::printf("\n");
  std::printf("store resident: %.2f MiB total\n",
              static_cast<double>(storage.resident_bytes) /
                  (1024.0 * 1024.0));
  for (size_t s = 0; s < storage.shard_resident_bytes.size(); ++s) {
    std::printf("  shard %zu: %.2f MiB\n", s,
                static_cast<double>(storage.shard_resident_bytes[s]) /
                    (1024.0 * 1024.0));
  }
  for (const CollectionIndexInfo& info : collection.Indexes()) {
    std::printf("index \"%s\" (%s): %s\n", info.name.c_str(),
                info.method.c_str(), info.built ? "built" : "not built");
  }
  const perfmon::MemoryUsage mem = perfmon::SampleMemory();
  std::printf("process RSS: %.2f MiB (peak %.2f MiB)\n",
              static_cast<double>(mem.resident_bytes) / (1024.0 * 1024.0),
              static_cast<double>(mem.peak_resident_bytes) /
                  (1024.0 * 1024.0));
  return 0;
}

// collection open --durability=DIR [--indexes=...]: recovers a persisted
// collection (snapshot + WAL replay), reports what recovery did, and exits
// nonzero with the typed status message when the directory is missing or
// damaged — the gate CI's recovery smoke runs after killing a serving
// process mid-load.
int RunCollectionOpen(const Args& args) {
  const std::string dir = args.Get("durability", "");
  if (dir.empty()) {
    std::fprintf(stderr, "collection open requires --durability=DIR\n");
    return Usage();
  }
  ConfigureThreads(args);
  const std::string indexes = args.Get("indexes", "DB-LSH");
  Timer timer;
  auto opened = Collection::Open(CollectionPrefix(args) + ": " + indexes);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open collection at %s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *opened.value();
  const CollectionDurabilityInfo d = collection.Durability();
  std::printf("recovered %zu live points (dim %zu) from %s in %.3f s\n",
              collection.size(), collection.dim(), dir.c_str(),
              timer.ElapsedSec());
  std::printf("snapshot restore + %llu replayed WAL record(s) took %.3f ms; "
              "state re-checkpointed on open\n",
              static_cast<unsigned long long>(d.replayed_records),
              d.recovery_ms);
  return 0;
}

// collection checkpoint: forces a durable checkpoint — remotely via the
// kCheckpoint RPC against a running server, or locally by recovering the
// directory and rotating it.
int RunCollectionCheckpoint(const Args& args) {
  if (args.Has("server")) {
    auto client = ConnectServer(args);
    if (client == nullptr) return 1;
    const std::string name = args.Get("collection", "main");
    Timer timer;
    if (Status s = client->Checkpoint(name); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed \"%s\" in %.3f ms\n", name.c_str(),
                timer.ElapsedMs());
    return 0;
  }
  const std::string dir = args.Get("durability", "");
  if (dir.empty()) {
    std::fprintf(stderr,
                 "collection checkpoint requires --server=H:P or "
                 "--durability=DIR\n");
    return Usage();
  }
  ConfigureThreads(args);
  auto opened = Collection::Open(CollectionPrefix(args) + ": " +
                                 args.Get("indexes", "DB-LSH"));
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open collection at %s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  Timer timer;
  if (Status s = opened.value()->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed %zu live points at %s in %.3f ms\n",
              opened.value()->size(), dir.c_str(), timer.ElapsedMs());
  return 0;
}

// replication status --server=H:P: asks a running server (primary or
// replica) for its role and per-shard replication positions.
int RunReplicationStatus(const Args& args) {
  if (!args.Has("server")) return Usage();
  auto client = ConnectServer(args);
  if (client == nullptr) return 1;
  const std::string name = args.Get("collection", "main");
  auto status = client->ReplicaStatus(name);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.status().ToString().c_str());
    return 1;
  }
  const auto& reply = status.value();
  if (reply.role == 0) {
    std::printf("collection \"%s\": primary, %llu WAL record(s) shipped to "
                "subscribers\n",
                name.c_str(),
                static_cast<unsigned long long>(reply.records_shipped));
  } else {
    std::printf("collection \"%s\": replica of %s, %llu record(s) applied\n",
                name.c_str(), reply.primary.c_str(),
                static_cast<unsigned long long>(reply.records_applied));
  }
  uint64_t total_lag = 0;
  for (size_t s = 0; s < reply.shards.size(); ++s) {
    const auto& shard = reply.shards[s];
    const uint64_t lag = shard.primary_lsn - shard.applied_lsn;
    total_lag += lag;
    std::printf("  shard %zu: applied LSN %llu / primary LSN %llu "
                "(lag %llu)\n",
                s, static_cast<unsigned long long>(shard.applied_lsn),
                static_cast<unsigned long long>(shard.primary_lsn),
                static_cast<unsigned long long>(lag));
  }
  std::printf("total lag: %llu record(s) across %zu shard(s)\n",
              static_cast<unsigned long long>(total_lag),
              reply.shards.size());
  return 0;
}

int RunReplication(int argc, char** argv, const Args& args) {
  const std::string sub = argc >= 3 ? argv[2] : "";
  if (sub == "status") return RunReplicationStatus(args);
  return Usage();
}

int RunCollection(int argc, char** argv, const Args& args) {
  const std::string sub = argc >= 3 ? argv[2] : "";
  const bool remote = args.Has("server");
  if (sub == "upsert") {
    return remote ? RunRemoteUpsert(args) : RunCollectionUpsert(args);
  }
  if (sub == "delete") {
    return remote ? RunRemoteDelete(args) : RunCollectionDelete(args);
  }
  if (sub == "search") {
    return remote ? RunRemoteSearch(args) : RunCollectionSearch(args);
  }
  if (sub == "stats") {
    return remote ? RunRemoteStats(args) : RunCollectionStats(args);
  }
  if (sub == "open") return RunCollectionOpen(args);
  if (sub == "checkpoint") return RunCollectionCheckpoint(args);
  return Usage();
}

int RunStats(const Args& args) {
  if (args.Has("server")) return RunRemoteStats(args);
  const std::string data_path = args.Get("data", "");
  if (data_path.empty()) return Usage();
  auto data = LoadFvecs(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const DatasetStats stats = EstimateStats(data.value());
  std::printf("n = %zu, dim = %zu\n", data.value().rows(),
              data.value().cols());
  std::printf("mean distance:      %.4f\n", stats.mean_distance);
  std::printf("mean 1-NN distance: %.4f\n", stats.mean_nn_distance);
  std::printf("relative contrast:  %.3f (higher = easier)\n",
              stats.relative_contrast);
  std::printf("LID (MLE):          %.2f (higher = harder)\n", stats.lid);
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  if (argc < 2) return dblsh::Usage();
  const dblsh::Args args(argc, argv);
  const std::string command = argv[1];
  if (command == "methods") return dblsh::RunMethods();
  if (command == "gen") return dblsh::RunGen(args);
  if (command == "dataset") return dblsh::RunDataset(argc, argv, args);
  if (command == "build") return dblsh::RunBuild(args);
  if (command == "query") return dblsh::RunQuery(args);
  if (command == "collection") return dblsh::RunCollection(argc, argv, args);
  if (command == "serve") return dblsh::RunServe(args);
  if (command == "replication") {
    return dblsh::RunReplication(argc, argv, args);
  }
  if (command == "ping") return dblsh::RunPing(args);
  // PR-3 spellings, kept as deprecation aliases of the collection path.
  if (command == "insert") {
    std::fprintf(stderr, "note: `insert` is deprecated; use `dblsh_tool "
                         "collection upsert`\n");
    return dblsh::RunCollectionUpsert(args);
  }
  if (command == "erase") {
    std::fprintf(stderr, "note: `erase` is deprecated; use `dblsh_tool "
                         "collection delete`\n");
    return dblsh::RunCollectionDelete(args);
  }
  if (command == "stats") return dblsh::RunStats(args);
  return dblsh::Usage();
}
