// Quickstart: build a DB-LSH index over a synthetic dataset and answer
// (c,k)-ANN queries through the public API.
//
//   ./examples/quickstart
//
#include <cstdio>

#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dblsh;

  // 1. Get a dataset. Any row-major float matrix works; .fvecs/.bvecs
  //    loaders live in dataset/io.h. Here: 20k clustered 64-d points.
  ClusteredSpec spec;
  spec.n = 20000;
  spec.dim = 64;
  spec.clusters = 32;
  const FloatMatrix data = GenerateClustered(spec);

  // 2. Configure and build the index. Defaults follow the paper
  //    (c = 1.5, w0 = 4c^2, L = 5, K = 10); everything is overridable.
  DbLshParams params;
  params.c = 1.5;
  DbLsh index(params);
  const Status build_status = index.Build(&data);
  if (!build_status.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 build_status.ToString().c_str());
    return 1;
  }
  std::printf("Built DB-LSH over %zu points: K=%zu, L=%zu, w0=%.2f, t=%zu\n",
              data.rows(), index.params().k, index.params().l,
              index.params().w0, index.params().t);

  // 3. Query. Ask for the 10 approximate nearest neighbors of point 123's
  //    slightly perturbed copy.
  std::vector<float> query(data.row(123), data.row(123) + data.cols());
  query[0] += 0.25f;

  QueryStats stats;
  const std::vector<Neighbor> result = index.Query(query.data(), 10, &stats);

  std::printf("\nTop-10 ANN of perturbed point 123 "
              "(%zu candidates verified, %zu rounds):\n",
              stats.candidates_verified, stats.rounds);
  const auto exact = ExactKnn(data, query.data(), 10);
  for (size_t i = 0; i < result.size(); ++i) {
    std::printf("  #%zu: id=%u dist=%.4f (exact #%zu dist=%.4f)\n", i + 1,
                result[i].id, result[i].dist, i + 1, exact[i].dist);
  }
  return 0;
}
