// Quickstart: serve a dataset through a Collection — the façade that owns
// the vectors and any number of ANN indexes over them — then upsert,
// search (with and without a filter), and delete.
//
//   ./quickstart
//
#include <cstdio>
#include <memory>

#include "core/collection.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dblsh;

  // 1. Get a dataset. Any row-major float matrix works; .fvecs/.bvecs
  //    loaders live in dataset/io.h. Here: 20k clustered 64-d points.
  ClusteredSpec spec;
  spec.n = 20000;
  spec.dim = 64;
  spec.clusters = 32;
  auto data = std::make_unique<FloatMatrix>(GenerateClustered(spec));

  // 2. Build a collection from a spec string: one DB-LSH index (the
  //    paper's method, updatable in place) plus an exact LinearScan slot
  //    for oracle checks. Defaults follow the paper (c = 1.5, w0 = 4c^2,
  //    L = 5, K = 10); any parameter is overridable via key=value — run
  //    `dblsh_tool methods` for the registry, and add name= /
  //    rebuild_threshold= per index for collection-level control.
  auto made = Collection::FromSpec("collection: DB-LSH,c=1.5; LinearScan",
                                   std::move(data));
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *made.value();
  std::printf("Collection: %zu vectors x %zu dims, indexes:\n",
              collection.size(), collection.dim());
  for (const auto& info : collection.Indexes()) {
    std::printf("  %-12s updatable=%d concurrent_reads=%d\n",
                info.name.c_str(), info.supports_updates,
                info.concurrent_queries);
  }

  // 3. Upsert a new vector. The collection assigns the id, stores the
  //    vector, and makes it visible to every index transactionally.
  const FloatMatrix snapshot = collection.Snapshot();
  std::vector<float> vec(snapshot.row(123), snapshot.row(123) + 64);
  vec[0] += 0.25f;
  auto upserted = collection.Upsert(vec.data(), vec.size());
  if (!upserted.ok()) {
    std::fprintf(stderr, "%s\n", upserted.status().ToString().c_str());
    return 1;
  }
  std::printf("\nUpserted new vector as id %u (epoch %llu)\n",
              upserted.value(),
              static_cast<unsigned long long>(collection.epoch()));

  // 4. Search. Routed to the best-capable index by default; per-query
  //    overrides (k, candidate budget, filters) ride on the request.
  QueryRequest request;
  request.k = 10;
  auto response = collection.Search(vec.data(), request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop-10 ANN of the upserted vector "
              "(%zu candidates verified, %zu rounds):\n",
              response.value().stats.candidates_verified,
              response.value().stats.rounds);
  const auto exact = ExactKnn(collection.Snapshot(), vec.data(), 10);
  for (size_t i = 0; i < response.value().neighbors.size(); ++i) {
    const Neighbor& nb = response.value().neighbors[i];
    std::printf("  #%zu: id=%u dist=%.4f (exact #%zu dist=%.4f)\n", i + 1,
                nb.id, nb.dist, i + 1, exact[i].dist);
  }

  // 5. Filtered search: exclude the vector itself — the filter is honored
  //    by every index in the collection, exact or approximate.
  request.filter = QueryFilter::Deny({upserted.value()});
  auto filtered = collection.Search(vec.data(), request);
  if (!filtered.ok()) {
    std::fprintf(stderr, "%s\n", filtered.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWith Deny({%u}): top hit is now id=%u dist=%.4f\n",
              upserted.value(), filtered.value().neighbors[0].id,
              filtered.value().neighbors[0].dist);

  // 6. Delete. The id disappears from every index atomically.
  if (Status s = collection.Delete(upserted.value()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Deleted id %u; collection back to %zu vectors.\n",
              upserted.value(), collection.size());
  return 0;
}
