// Quickstart: build a DB-LSH index over a synthetic dataset and answer
// (c,k)-ANN queries through the public API.
//
//   ./quickstart
//
#include <cstdio>

#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dblsh;

  // 1. Get a dataset. Any row-major float matrix works; .fvecs/.bvecs
  //    loaders live in dataset/io.h. Here: 20k clustered 64-d points.
  ClusteredSpec spec;
  spec.n = 20000;
  spec.dim = 64;
  spec.clusters = 32;
  const FloatMatrix data = GenerateClustered(spec);

  // 2. Construct the index from a spec string. Defaults follow the paper
  //    (c = 1.5, w0 = 4c^2, L = 5, K = 10); any parameter is overridable
  //    via key=value — run `dblsh_tool methods` for the full registry.
  auto made = IndexFactory::Make("DB-LSH,c=1.5");
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<AnnIndex> index = std::move(made).value();
  if (Status s = index->Build(&data); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& params = dynamic_cast<const DbLsh*>(index.get())->params();
  std::printf("Built %s over %zu points: K=%zu, L=%zu, w0=%.2f, t=%zu\n",
              index->Name().c_str(), data.rows(), params.k, params.l,
              params.w0, params.t);

  // 3. Query. Ask for the 10 approximate nearest neighbors of point 123's
  //    slightly perturbed copy; the response carries the per-query stats.
  std::vector<float> query(data.row(123), data.row(123) + data.cols());
  query[0] += 0.25f;

  QueryRequest request;
  request.k = 10;
  const QueryResponse response = index->Search(query.data(), request);

  std::printf("\nTop-10 ANN of perturbed point 123 "
              "(%zu candidates verified, %zu rounds):\n",
              response.stats.candidates_verified, response.stats.rounds);
  const auto exact = ExactKnn(data, query.data(), 10);
  for (size_t i = 0; i < response.neighbors.size(); ++i) {
    std::printf("  #%zu: id=%u dist=%.4f (exact #%zu dist=%.4f)\n", i + 1,
                response.neighbors[i].id, response.neighbors[i].dist, i + 1,
                exact[i].dist);
  }
  return 0;
}
