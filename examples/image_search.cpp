// Image-descriptor retrieval: the workload the paper's introduction
// motivates. A GIST-like descriptor collection is indexed once and then
// serves top-k similar-image queries; DB-LSH is compared in place against
// an exact scan to show the accuracy/latency trade. Both methods are
// constructed through the IndexFactory and queried through the batched
// request/response API — swap the spec string to compare any other method.
//
//   ./image_search [n] [dim]
//
#include <cstdio>
#include <cstdlib>

#include "core/index_factory.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dblsh;
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;
  const size_t dim = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 320;

  // "Image descriptors": clustered cloud mimicking GIST features. Hold out
  // 50 images as queries ("find images similar to this one").
  std::printf("Indexing %zu synthetic %zu-d image descriptors...\n", n, dim);
  const eval::Workload workload = eval::MakeWorkload(
      "gist-like",
      GenerateClustered({.n = n, .dim = dim, .clusters = 64, .seed = 2024}),
      50, 10);

  auto ann = IndexFactory::Make("DB-LSH");
  auto exact = IndexFactory::Make("LinearScan");
  if (!ann.ok() || !exact.ok()) {
    std::fprintf(stderr, "factory error\n");
    return 1;
  }
  Timer build_timer;
  if (Status s = ann.value()->Build(&workload.data); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("DB-LSH built in %.3f s\n\n", build_timer.ElapsedSec());
  (void)exact.value()->Build(&workload.data);

  QueryRequest request;
  request.k = 10;
  Timer ann_timer;
  const auto approx =
      ann.value()->QueryBatch(workload.queries, request, /*num_threads=*/1);
  const double ann_ms = ann_timer.ElapsedMs();
  Timer exact_timer;
  (void)exact.value()->QueryBatch(workload.queries, request,
                                  /*num_threads=*/1);
  const double exact_ms = exact_timer.ElapsedMs();

  double recall = 0;
  for (size_t q = 0; q < workload.queries.rows(); ++q) {
    recall += eval::Recall(approx[q].neighbors, workload.ground_truth[q]);
  }
  const double denom = double(workload.queries.rows());
  std::printf("Similar-image search over %zu queries:\n",
              workload.queries.rows());
  std::printf("  DB-LSH:      %.3f ms/query, recall@10 = %.3f\n",
              ann_ms / denom, recall / denom);
  std::printf("  exact scan:  %.3f ms/query, recall@10 = 1.000\n",
              exact_ms / denom);
  std::printf("  speedup:     %.1fx\n", exact_ms / ann_ms);
  return 0;
}
