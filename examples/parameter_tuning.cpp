// Parameter tuning walkthrough: how the paper's theory (Observation 1,
// Lemma 1, Lemma 3) maps to concrete K, L choices, and how the candidate
// budget t trades accuracy for time on a real index.
//
//   ./examples/parameter_tuning
//
#include <cmath>
#include <cstdio>

#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "lsh/collision.h"
#include "lsh/params.h"
#include "util/timer.h"

int main() {
  using namespace dblsh;

  // --- Theory: what the formulas say -------------------------------------
  std::printf("Lemma 3: rho* bound 1/c^alpha, alpha = gamma*f(gamma)/tail\n");
  for (double gamma : {1.0, 2.0, 3.0}) {
    std::printf("  gamma=%.1f  alpha=%.3f  (w0 = %.1f c^2)\n", gamma,
                lsh::AlphaForGamma(gamma), 2 * gamma);
  }
  std::printf("\nTheoretical (K, L) from Lemma 1 at w0 = 4c^2:\n");
  for (double c : {1.5, 2.0, 3.0}) {
    const auto derived = lsh::DeriveParams(1000000, c, 4 * c * c, 100);
    if (derived.ok()) {
      std::printf("  c=%.1f: rho*=%.4f -> K=%zu, L=%zu\n", c,
                  derived.value().rho_star, derived.value().k,
                  derived.value().l);
    }
  }

  // --- Practice: sweep t on a real index ----------------------------------
  std::printf("\nEffect of the candidate budget t (n = 20000, k = 10):\n");
  const eval::Workload workload = eval::MakeWorkload(
      "tuning",
      GenerateClustered({.n = 20000, .dim = 64, .clusters = 32, .seed = 7}),
      30, 10);
  std::printf("  %6s %10s %10s %8s\n", "t", "budget", "ms/query", "recall");
  // One index, many budgets: the QueryRequest's candidate_budget override
  // replays the t sweep without rebuilding (the old API rebuilt per t).
  auto made = IndexFactory::Make("DB-LSH");
  if (!made.ok() || !made.value()->Build(&workload.data).ok()) return 1;
  const auto& index = *made.value();
  const size_t l = dynamic_cast<const DbLsh&>(index).params().l;
  for (size_t t : {5, 20, 80, 320}) {
    QueryRequest request;
    request.k = 10;
    request.candidate_budget = t;
    Timer timer;
    const auto responses =
        index.QueryBatch(workload.queries, request, /*num_threads=*/1);
    const double ms = timer.ElapsedMs();
    double recall = 0;
    for (size_t q = 0; q < workload.queries.rows(); ++q) {
      recall += eval::Recall(responses[q].neighbors, workload.ground_truth[q]);
    }
    std::printf("  %6zu %10zu %10.3f %8.3f\n", t, 2 * t * l + 10,
                ms / double(workload.queries.rows()),
                recall / double(workload.queries.rows()));
  }
  std::printf("\nGuidance: recall saturates once 2tL covers the query's "
              "natural neighborhood; beyond that you only pay time.\n");
  return 0;
}
