// Quantifies Figure 2: the search-region comparison that motivates DB-LSH.
// The paper's figure contrasts, in one projected space, (a) E2LSH's
// query-oblivious grid cell, (b) C2's unbounded cross-shaped union of
// slabs, (c) MQ's ball, and (d) DB-LSH's query-centric square. Here each
// region is materialized on a real projected workload and measured by its
// *candidate efficiency*: how many of the points it retrieves are true
// k-NN of the query (higher precision at equal retrieval cost = better
// region geometry).
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/common.h"
#include "dataset/ground_truth.h"
#include "eval/table.h"
#include "lsh/projection.h"
#include "util/distance.h"

namespace dblsh {
namespace {

void Run(size_t n, size_t dim, size_t k, size_t proj_dim, double width) {
  const FloatMatrix data = GenerateClustered({.n = n,
                                              .dim = dim,
                                              .clusters = 32,
                                              .center_spread = 20.0,
                                              .cluster_stddev = 2.0,
                                              .seed = 7});
  const lsh::ProjectionBank bank(proj_dim, dim, 11);
  const FloatMatrix projected = bank.ProjectDataset(data);
  const double w = width * EstimateNnDistance(data, 13);

  // Per-region tallies across queries: points retrieved / true k-NN hit.
  struct Tally {
    size_t retrieved = 0;
    size_t hits = 0;
  };
  Tally grid, cross, ball, window;

  const size_t num_queries = 25;
  std::vector<float> proj_q(proj_dim);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    const size_t anchor = (qi * 131) % n;
    const float* query = data.row(anchor);
    bank.ProjectAll(query, proj_q.data());
    const auto gt = ExactKnn(data, query, k + 1);  // skip self at rank 0
    std::set<uint32_t> truth;
    for (size_t i = 1; i < gt.size(); ++i) truth.insert(gt[i].id);

    const auto half = static_cast<float>(w / 2.0);
    for (uint32_t id = 0; id < n; ++id) {
      if (id == anchor) continue;
      const float* p = projected.row(id);
      // (a) E2LSH: same query-oblivious grid cell in every dimension.
      bool in_grid = true;
      // (d) DB-LSH: query-centric hypercube.
      bool in_window = true;
      // (b) C2: cross = within the slab in AT LEAST a threshold number of
      // dimensions (here: half of them, the collision-counting rule).
      size_t slab_hits = 0;
      float dist2 = 0.f;
      for (size_t j = 0; j < proj_dim; ++j) {
        const float cell_q = std::floor(proj_q[j] / w);
        const float cell_p = std::floor(p[j] / w);
        if (cell_q != cell_p) in_grid = false;
        const float diff = std::abs(p[j] - proj_q[j]);
        if (diff > half) in_window = false;
        if (diff <= half) ++slab_hits;
        dist2 += diff * diff;
      }
      // (c) MQ: ball of radius half * sqrt(proj_dim) (same volume scale).
      const bool in_ball =
          dist2 <= half * half * static_cast<float>(proj_dim);
      const bool in_cross = slab_hits >= (proj_dim + 1) / 2;
      const bool is_hit = truth.count(id) > 0;
      if (in_grid) {
        ++grid.retrieved;
        grid.hits += is_hit;
      }
      if (in_cross) {
        ++cross.retrieved;
        cross.hits += is_hit;
      }
      if (in_ball) {
        ++ball.retrieved;
        ball.hits += is_hit;
      }
      if (in_window) {
        ++window.retrieved;
        window.hits += is_hit;
      }
    }
  }

  eval::Table table({"Region (method family)", "AvgRetrieved", "AvgTrueNN",
                     "Precision"});
  auto add = [&](const char* name, const Tally& t) {
    const double denom = static_cast<double>(num_queries);
    table.AddRow({name, eval::Table::Fmt(t.retrieved / denom, 1),
                  eval::Table::Fmt(t.hits / denom, 2),
                  eval::Table::Fmt(t.retrieved
                                       ? double(t.hits) / t.retrieved
                                       : 0.0,
                                   4)});
  };
  add("grid cell (E2LSH, static)", grid);
  add("cross of slabs (C2: QALSH/VHP)", cross);
  add("ball (MQ: SRS/PM-LSH)", ball);
  add("query-centric cube (DB-LSH)", window);
  table.Print();
  std::printf(
      "\nShape to check: the cube dominates the grid cell (no boundary "
      "losses) at similar size; the cross retrieves far more points for "
      "the same hits (unbounded region); the ball is competitive but "
      "costlier to query in an index.\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Figure 2: search-region geometry comparison",
      "Points close to the query can fall outside E2LSH's static cell "
      "(hash boundary issue); C2's cross-like region is unbounded; DB-LSH "
      "keeps a bounded query-centric cube with the best candidate "
      "precision.");
  dblsh::Run(static_cast<size_t>(flags.GetInt("n", 20000)),
             static_cast<size_t>(flags.GetInt("dim", 128)),
             static_cast<size_t>(flags.GetInt("k", 50)),
             static_cast<size_t>(flags.GetInt("proj_dim", 8)),
             flags.GetDouble("width", 6.0));
  return 0;
}
