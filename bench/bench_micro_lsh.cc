// Micro-benchmarks for the LSH math substrate (google-benchmark): the
// projection kernel dominating DB-LSH's O(KLd) per-query hashing term, the
// static hash, and the collision-probability evaluations used for
// parameter derivation.
#include <benchmark/benchmark.h>

#include "dataset/synthetic.h"
#include "lsh/collision.h"
#include "lsh/params.h"
#include "lsh/projection.h"
#include "util/random.h"

namespace dblsh::lsh {
namespace {

void BM_ProjectOne(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  ProjectionBank bank(60, dim, 94);
  std::vector<float> point(dim, 1.5f);
  std::vector<float> out(60);
  for (auto _ : state) {
    bank.ProjectAll(point.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 60);
}
BENCHMARK(BM_ProjectOne)->Arg(128)->Arg(384)->Arg(960);

void BM_ProjectDataset(benchmark::State& state) {
  const FloatMatrix data = GenerateUniform(10000, 128, 100.0, 95);
  ProjectionBank bank(50, 128, 96);
  for (auto _ : state) {
    FloatMatrix projected = bank.ProjectDataset(data);
    benchmark::DoNotOptimize(projected.data().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_ProjectDataset);

void BM_StaticHash(benchmark::State& state) {
  StaticHashFamily family(60, 128, 9.0, 97);
  std::vector<float> point(128, 2.f);
  std::vector<int64_t> out(60);
  for (auto _ : state) {
    family.HashAll(point.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StaticHash);

void BM_CollisionProb(benchmark::State& state) {
  double tau = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CollisionProbQueryCentric(tau, 9.0));
    benchmark::DoNotOptimize(CollisionProbStatic(tau, 9.0));
    tau += 1e-9;
  }
}
BENCHMARK(BM_CollisionProb);

void BM_DeriveParams(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveParams(1000000, 1.5, 9.0, 100));
  }
}
BENCHMARK(BM_DeriveParams);

}  // namespace
}  // namespace dblsh::lsh

BENCHMARK_MAIN();
