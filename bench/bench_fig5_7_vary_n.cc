// Reproduces Figures 5-7: query time, recall and overall ratio as the
// dataset cardinality grows through 0.2n, 0.4n, 0.6n, 0.8n, n, on the
// Gist-like and TinyImages-like stand-ins. The paper's shape: DB-LSH's
// query time grows sub-linearly and slowest among all methods, while
// recall and ratio stay roughly flat for all methods (the distribution is
// unchanged), with DB-LSH on top throughout.
#include <cstdio>

#include "bench/common.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh {
namespace {

void RunDataset(const std::string& name, double scale, size_t queries,
                size_t k) {
  // Generate the full-size dataset once; each fraction takes a prefix so
  // the distribution is identical across points of the sweep.
  eval::Workload full = bench::ProfileWorkload(name, scale, queries, k);
  std::printf("Dataset %s (full n = %zu, d = %zu)\n", name.c_str(),
              full.data.rows(), full.data.cols());

  eval::Table time_table({"Method", "0.2n", "0.4n", "0.6n", "0.8n", "1.0n"});
  eval::Table recall_table(
      {"Method", "0.2n", "0.4n", "0.6n", "0.8n", "1.0n"});
  eval::Table ratio_table(
      {"Method", "0.2n", "0.4n", "0.6n", "0.8n", "1.0n"});

  const auto method_count =
      eval::MakePaperMethods(full.data.rows()).size();
  std::vector<std::vector<std::string>> time_rows(method_count),
      recall_rows(method_count), ratio_rows(method_count);

  for (int step = 1; step <= 5; ++step) {
    const size_t n = full.data.rows() * step / 5;
    eval::Workload w;
    w.name = full.name;
    w.k = full.k;
    w.data = full.data.Prefix(n);
    w.queries = full.queries;
    w.ground_truth = ComputeGroundTruth(w.data, w.queries, w.k);
    const auto methods = eval::MakePaperMethods(n);
    for (size_t m = 0; m < methods.size(); ++m) {
      auto result = eval::RunMethod(methods[m].get(), w);
      if (!result.ok()) continue;
      const auto& r = result.value();
      if (time_rows[m].empty()) {
        time_rows[m].push_back(r.method);
        recall_rows[m].push_back(r.method);
        ratio_rows[m].push_back(r.method);
      }
      time_rows[m].push_back(eval::Table::FmtMs(r.avg_query_ms));
      recall_rows[m].push_back(eval::Table::Fmt(r.recall, 4));
      ratio_rows[m].push_back(eval::Table::Fmt(r.overall_ratio, 4));
    }
  }
  for (auto& row : time_rows) time_table.AddRow(std::move(row));
  for (auto& row : recall_rows) recall_table.AddRow(std::move(row));
  for (auto& row : ratio_rows) ratio_table.AddRow(std::move(row));

  std::printf("Fig. 5 (query time vs n):\n");
  time_table.Print();
  std::printf("Fig. 6 (recall vs n):\n");
  recall_table.Print();
  std::printf("Fig. 7 (overall ratio vs n):\n");
  ratio_table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Figures 5-7: effect of cardinality n",
      "DB-LSH leads on all metrics at every fraction of the data; its query "
      "time grows much more slowly than competitors (sub-linear cost), and "
      "accuracy stays roughly stable with n for all methods.");
  const double scale = flags.GetDouble("scale", 0.1);
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 25));
  const auto k = static_cast<size_t>(flags.GetInt("k", 50));
  dblsh::RunDataset(flags.GetString("dataset1", "Gist"), scale, queries, k);
  dblsh::RunDataset(flags.GetString("dataset2", "TinyImages80M"), scale,
                    queries, k);
  return 0;
}
