// Reproduces Figures 9-10: recall-time and ratio-time trade-off curves.
// The paper varies the approximation ratio c; equivalently each method's
// accuracy knob is swept here (candidate budget / probes), which traces the
// same curve: more time -> higher recall, lower ratio. The paper's shape:
// DB-LSH needs the least time to reach any given recall/ratio (10-70% less
// than the second best), and every curve improves monotonically with time.
#include <cstdio>

#include "bench/common.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh {
namespace {

/// One point of a method's trade-off curve: the factory spec of the
/// configured index plus the knob setting that produced it.
struct CurvePoint {
  std::string knob;
  std::string spec;
};

/// Each method's accuracy knob swept as factory-spec overrides: the
/// candidate budget t for DB-LSH/FB-LSH, the verification budget beta for
/// the budgeted baselines, and the probe count for LCCS-LSH.
std::vector<CurvePoint> MakeCurve(const std::string& method, size_t n) {
  std::vector<CurvePoint> points;
  if (method == "DB-LSH" || method == "FB-LSH") {
    const std::string hint =
        method == "FB-LSH" ? ",n=" + std::to_string(n) : "";
    for (size_t t : {5, 15, 40, 100, 250}) {
      points.push_back({"t=" + std::to_string(t),
                        method + hint + ",t=" + std::to_string(t)});
    }
  } else if (method == "LCCS-LSH") {
    for (size_t probes : {64, 256, 1024, 4096, 16384}) {
      points.push_back({"probes=" + std::to_string(probes),
                        method + ",probes=" + std::to_string(probes)});
    }
  } else {
    for (double beta : {0.005, 0.02, 0.08, 0.2, 0.5}) {
      points.push_back({"beta=" + eval::Table::Fmt(beta, 3),
                        method + ",beta=" + eval::Table::Fmt(beta, 3)});
    }
  }
  return points;
}

void RunDataset(const std::string& name, double scale, size_t queries,
                size_t k) {
  const eval::Workload workload =
      bench::ProfileWorkload(name, scale, queries, k);
  std::printf("Dataset %s (n = %zu, d = %zu, k = %zu)\n", name.c_str(),
              workload.data.rows(), workload.data.cols(), k);
  eval::Table table(
      {"Method", "Knob", "QueryTime", "Recall", "OverallRatio"});
  for (const std::string& method :
       {std::string("DB-LSH"), std::string("FB-LSH"), std::string("LCCS-LSH"),
        std::string("PM-LSH"), std::string("R2LSH"), std::string("VHP"),
        std::string("LSB-Forest"), std::string("QALSH")}) {
    for (const auto& point : MakeCurve(method, workload.data.rows())) {
      auto result = eval::RunSpec(point.spec, workload);
      if (!result.ok()) continue;
      const auto& r = result.value();
      table.AddRow({method, point.knob, eval::Table::FmtMs(r.avg_query_ms),
                    eval::Table::Fmt(r.recall, 4),
                    eval::Table::Fmt(r.overall_ratio, 4)});
    }
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Figures 9-10: recall-time and ratio-time trade-off curves",
      "Reading each method's (time, recall) / (time, ratio) pairs as a "
      "curve: DB-LSH takes the least time to reach any target recall or "
      "ratio, reducing query time by 10-70% vs the second best method.");
  const double scale = flags.GetDouble("scale", 0.08);
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 20));
  const auto k = static_cast<size_t>(flags.GetInt("k", 50));
  for (const std::string& name :
       {std::string("Trevi"), std::string("Gist"), std::string("SIFT10M"),
        std::string("TinyImages80M")}) {
    dblsh::RunDataset(name, scale, queries, k);
  }
  return 0;
}
