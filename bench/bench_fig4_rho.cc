// Reproduces Figure 4: rho* vs rho as functions of the approximation ratio
// c, for (a) w = 0.4c^2 (gamma = 0.2, alpha < 1) and (b) w = 4c^2
// (gamma = 2, alpha = 4.746). The paper's claims: in (a) static rho can
// exceed 1/c while rho* stays below 1/c^alpha and below rho; in (b) rho
// hugs 1/c while rho* decays rapidly toward 0.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "eval/table.h"
#include "lsh/collision.h"

namespace dblsh {
namespace {

void RunPanel(const char* title, double gamma) {
  const double alpha = lsh::AlphaForGamma(gamma);
  std::printf("--- %s (gamma = %.2f, alpha = %.3f) ---\n", title, gamma,
              alpha);
  eval::Table table({"c", "rho*", "rho (static)", "1/c", "1/c^alpha",
                     "rho* <= 1/c^alpha", "rho* < rho"});
  for (double c = 1.1; c <= 4.0001; c += 0.25) {
    const double w = 2.0 * gamma * c * c;
    const double rho_star = lsh::RhoQueryCentric(1.0, c, w);
    const double rho = lsh::RhoStatic(1.0, c, w);
    const double bound = std::pow(c, -alpha);
    table.AddRow({eval::Table::Fmt(c, 2), eval::Table::Fmt(rho_star, 4),
                  eval::Table::Fmt(rho, 4), eval::Table::Fmt(1.0 / c, 4),
                  eval::Table::Fmt(bound, 4),
                  rho_star <= bound + 1e-9 ? "yes" : "NO",
                  rho_star < rho ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Figure 4: rho* vs rho",
      "(a) w = 0.4c^2: rho exceeds 1/c for c < 2 while rho* < rho always; "
      "(b) w = 4c^2: rho ~ 1/c while rho* is bounded by 1/c^4.746 and "
      "decays rapidly to 0.");
  dblsh::RunPanel("Fig. 4(a): w = 0.4c^2", flags.GetDouble("gamma_a", 0.2));
  dblsh::RunPanel("Fig. 4(b): w = 4c^2", flags.GetDouble("gamma_b", 2.0));
  return 0;
}
