#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dblsh::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::Has(const std::string& key) const { return values_.count(key); }

eval::Workload ProfileWorkload(const std::string& name, double scale,
                               size_t num_queries, size_t k, uint64_t seed) {
  for (const auto& profile : PaperDatasetProfiles(scale)) {
    if (profile.name == name) {
      return eval::MakeWorkload(name, GenerateProfile(profile, seed),
                                num_queries, k, seed + 1);
    }
  }
  throw std::runtime_error("unknown dataset profile: " + name);
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("Paper reference: %s\n\n", claim.c_str());
}

}  // namespace dblsh::bench
