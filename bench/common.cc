#include "bench/common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace dblsh::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::Has(const std::string& key) const { return values_.count(key); }

eval::Workload ProfileWorkload(const std::string& name, double scale,
                               size_t num_queries, size_t k, uint64_t seed) {
  for (const auto& profile : PaperDatasetProfiles(scale)) {
    if (profile.name == name) {
      return eval::MakeWorkload(name, GenerateProfile(profile, seed),
                                num_queries, k, seed + 1);
    }
  }
  throw std::runtime_error("unknown dataset profile: " + name);
}

void PrintBanner(const std::string& experiment, const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("Paper reference: %s\n\n", claim.c_str());
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples == nullptr || samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const double clamped = std::max(0.0, std::min(100.0, p));
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples->size())));
  return (*samples)[rank == 0 ? 0 : rank - 1];
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json::Json(double v) : kind_(Kind::kNumber), number_(v) {}
Json::Json(int v) : Json(static_cast<int64_t>(v)) {}
Json::Json(int64_t v)
    : kind_(Kind::kNumber), number_(static_cast<double>(v)),
      integral_(true) {}
Json::Json(size_t v)
    : kind_(Kind::kNumber), number_(static_cast<double>(v)),
      integral_(true) {}
Json::Json(bool v) : kind_(Kind::kBool), bool_(v) {}
Json::Json(const char* v) : kind_(Kind::kString), string_(v) {}
Json::Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

Json& Json::Set(const std::string& key, Json value) {
  kind_ = Kind::kObject;  // tolerate Set on a default-constructed value
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Json::Dump(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner_pad(static_cast<size_t>(indent) + 2, ' ');
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      char buf[64];
      if (integral_) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else if (std::isfinite(number_)) {
        std::snprintf(buf, sizeof(buf), "%g", number_);
      } else {
        return "null";  // JSON has no inf/nan
      }
      return buf;
    }
    case Kind::kString:
      AppendEscaped(string_, &out);
      return out;
    case Kind::kObject: {
      if (members_.empty()) return "{}";
      out = "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        AppendEscaped(members_[i].first, &out);
        out += ": ";
        out += members_[i].second.Dump(indent + 2);
        if (i + 1 < members_.size()) out += ",";
        out += "\n";
      }
      out += pad + "}";
      return out;
    }
    case Kind::kArray: {
      if (elements_.empty()) return "[]";
      out = "[\n";
      for (size_t i = 0; i < elements_.size(); ++i) {
        out += inner_pad + elements_[i].Dump(indent + 2);
        if (i + 1 < elements_.size()) out += ",";
        out += "\n";
      }
      out += pad + "]";
      return out;
    }
  }
  return "null";  // unreachable
}

bool Json::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << Dump() << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace dblsh::bench
