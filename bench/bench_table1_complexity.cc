// Reproduces Table I: comparison of typical LSH methods — indexing/query
// style, index size, and query cost. The asymptotic columns are the paper's;
// the numeric columns instantiate the formulas at concrete n and c so the
// claimed separation (rho* << rho <= 1/c) is visible as actual K, L and
// candidate counts.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "eval/table.h"
#include "lsh/collision.h"
#include "lsh/params.h"

namespace dblsh {
namespace {

void Run(size_t n, double c, size_t t) {
  const double w0 = 4.0 * c * c;  // paper default (gamma = 2)
  const double rho_star = lsh::RhoQueryCentric(1.0, c, w0);
  const double rho_static = lsh::RhoStatic(1.0, c, w0);
  const double alpha = lsh::AlphaForGamma(2.0);

  std::printf("n = %zu, c = %.2f, w0 = 4c^2 = %.2f, t = %zu\n", n, c, w0, t);
  std::printf("rho* = %.4f (bound 1/c^%.3f = %.4f), static rho = %.4f, "
              "1/c = %.4f\n\n",
              rho_star, alpha, std::pow(c, -alpha), rho_static, 1.0 / c);

  const auto derived = lsh::DeriveParams(n, c, w0, t);
  const double nd = static_cast<double>(n);

  eval::Table table({"Algorithm", "Indexing", "Query", "K", "L",
                     "IndexSize (entries)", "QueryCost (candidates)"});
  if (derived.ok()) {
    const auto& p = derived.value();
    table.AddRow({"DB-LSH", "Dynamic", "Query-centric", std::to_string(p.k),
                  std::to_string(p.l),
                  std::to_string(static_cast<size_t>(nd) * p.k * p.l),
                  std::to_string(2 * t * p.l + 1)});
  }
  // E2LSH / LSB-Forest: static (K,L)-index at rho_static; K from p2 of the
  // static family, L = n^rho.
  {
    const double p2 = lsh::CollisionProbStatic(c, w0);
    const auto k = static_cast<size_t>(
        std::ceil(std::log(nd) / std::log(1.0 / p2)));
    const auto l = static_cast<size_t>(std::ceil(std::pow(nd, rho_static)));
    table.AddRow({"E2LSH", "Static", "Query-oblivious", std::to_string(k),
                  std::to_string(l),
                  std::to_string(static_cast<size_t>(nd) * k * l),
                  std::to_string(2 * l)});
    table.AddRow({"LSB-Forest", "Static", "Query-oblivious",
                  std::to_string(k), std::to_string(l),
                  std::to_string(static_cast<size_t>(nd) * k * l),
                  std::to_string(2 * l)});
  }
  // C2 methods: K = O(log n) one-dimensional structures; query cost is not
  // sub-linear (worst case all n points counted).
  {
    const auto k = static_cast<size_t>(std::ceil(std::log2(nd)));
    table.AddRow({"QALSH (C2)", "Dynamic", "Query-centric",
                  std::to_string(k), "1",
                  std::to_string(static_cast<size_t>(nd) * k),
                  "O(n) worst case"});
    table.AddRow({"VHP (C2)", "Dynamic", "Query-centric", "O(1)", "1",
                  std::to_string(static_cast<size_t>(nd) * 60),
                  "O(n) worst case"});
    table.AddRow({"R2LSH (C2)", "Dynamic", "Query-centric", "O(1)", "1",
                  std::to_string(static_cast<size_t>(nd) * 40),
                  "O(n) worst case"});
  }
  // MQ methods: O(n) index, beta*n verification.
  {
    const double beta = 0.08;
    table.AddRow({"SRS (MQ)", "Dynamic", "Query-centric", "6-15", "1",
                  std::to_string(static_cast<size_t>(nd) * 6),
                  std::to_string(static_cast<size_t>(beta * nd)) + " (bn)"});
    table.AddRow({"PM-LSH (MQ)", "Dynamic", "Query-centric", "15", "1",
                  std::to_string(static_cast<size_t>(nd) * 15),
                  std::to_string(static_cast<size_t>(beta * nd)) + " (bn)"});
  }
  table.Print();
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Table I: complexity comparison of typical LSH methods",
      "DB-LSH achieves O(n^rho* d log n) query cost with rho* <= 1/c^alpha "
      "(alpha = 4.746 at w0 = 4c^2), vs rho <= 1/c for static (K,L) methods "
      "and linear worst cases for C2/MQ methods.");
  const auto n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const double c = flags.GetDouble("c", 1.5);
  const auto t = static_cast<size_t>(flags.GetInt("t", 100));
  dblsh::Run(n, c, t);
  return 0;
}
