// Reproduces Table IV: performance overview — query time, overall ratio,
// recall, and indexing time for the full method lineup on stand-ins for the
// paper's datasets ((c,k)-ANN, k = 50, c = 1.5, 100 held-out queries).
//
// Default settings are laptop-scale (see DESIGN.md substitutions); pass
// --scale=1.0 --queries=100 --datasets=all for the full sweep. Absolute
// times differ from the paper's testbed; the shape to check is: DB-LSH has
// the smallest indexing time, the best query time at equal-or-better
// recall, and beats FB-LSH on all three query metrics.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "dataset/stats.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh {
namespace {

void Run(const std::vector<std::string>& datasets, double scale,
         size_t queries, size_t k, double c) {
  for (const std::string& name : datasets) {
    const eval::Workload workload =
        bench::ProfileWorkload(name, scale, queries, k);
    const DatasetStats stats = EstimateStats(workload.data, 30);
    std::printf("Dataset %s: n = %zu, d = %zu, k = %zu "
                "(relative contrast %.2f, LID %.1f)\n",
                name.c_str(), workload.data.rows(), workload.data.cols(), k,
                stats.relative_contrast, stats.lid);
    eval::Table table({"Method", "QueryTime", "OverallRatio", "Recall",
                       "IndexingTime(s)", "#HashFns", "AvgCandidates"});
    for (const auto& method : eval::MakePaperMethods(workload.data.rows(),
                                                     c)) {
      auto result = eval::RunMethod(method.get(), workload);
      if (!result.ok()) {
        std::printf("  %s failed: %s\n", method->Name().c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      const auto& r = result.value();
      table.AddRow({r.method, eval::Table::FmtMs(r.avg_query_ms),
                    eval::Table::Fmt(r.overall_ratio, 4),
                    eval::Table::Fmt(r.recall, 4),
                    eval::Table::Fmt(r.indexing_time_sec, 3),
                    std::to_string(r.hash_functions),
                    eval::Table::Fmt(r.avg_candidates, 0)});
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Table IV: performance overview",
      "DB-LSH offers the best query performance on all datasets: smallest "
      "indexing time, 10-70% lower query time than FB-LSH at higher recall, "
      "and ~40% lower query time than the second-best competitor.");
  const double scale = flags.GetDouble("scale", 0.1);
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 30));
  const auto k = static_cast<size_t>(flags.GetInt("k", 50));
  const double c = flags.GetDouble("c", 1.5);

  std::vector<std::string> datasets;
  const std::string which = flags.GetString("datasets", "default");
  if (which == "all") {
    for (const auto& p : dblsh::PaperDatasetProfiles(1.0)) {
      datasets.push_back(p.name);
    }
  } else if (which == "default") {
    datasets = {"Audio", "MNIST", "NUS", "Deep1M", "Gist", "SIFT10M"};
  } else {
    // Comma-separated list of profile names.
    std::string rest = which;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      datasets.push_back(rest.substr(0, comma));
      rest = (comma == std::string::npos) ? "" : rest.substr(comma + 1);
    }
  }
  dblsh::Run(datasets, scale, queries, k, c);
  return 0;
}
