// Micro-benchmarks for the R*-tree substrate (google-benchmark): STR bulk
// loading vs insertion throughput, window queries, and cursor streaming.
// These quantify the "efficient window queries via multi-dimensional
// indexes" claim underlying DB-LSH's dynamic bucketing overhead argument.
#include <benchmark/benchmark.h>

#include "dataset/synthetic.h"
#include "rtree/rtree.h"
#include "util/random.h"

namespace dblsh::rtree {
namespace {

FloatMatrix MakePoints(size_t n, size_t dim) {
  return GenerateClustered({.n = n,
                            .dim = dim,
                            .clusters = 32,
                            .center_spread = 100.0,
                            .cluster_stddev = 2.0,
                            .seed = 91});
}

void BM_BulkLoad(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const FloatMatrix points = MakePoints(n, 10);
  for (auto _ : state) {
    RStarTree tree(&points);
    benchmark::DoNotOptimize(tree.BulkLoadAll());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BulkLoad)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_InsertBuild(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const FloatMatrix points = MakePoints(n, 10);
  for (auto _ : state) {
    RStarTree tree(&points);
    for (uint32_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Insert(i));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InsertBuild)->Arg(1000)->Arg(10000);

void BM_WindowQuery(benchmark::State& state) {
  const FloatMatrix points = MakePoints(50000, 10);
  RStarTree tree(&points);
  (void)tree.BulkLoadAll();
  Rng rng(92);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    const uint32_t anchor = static_cast<uint32_t>(rng.UniformInt(50000));
    tree.WindowQuery(
        Rect::Window(points.row(anchor), 10, double(state.range(0))), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WindowQuery)->Arg(2)->Arg(8)->Arg(32);

void BM_CursorFirstTen(benchmark::State& state) {
  // DB-LSH's access pattern: open a window cursor, take a few candidates,
  // abandon the rest.
  const FloatMatrix points = MakePoints(50000, 10);
  RStarTree tree(&points);
  (void)tree.BulkLoadAll();
  Rng rng(93);
  for (auto _ : state) {
    const uint32_t anchor = static_cast<uint32_t>(rng.UniformInt(50000));
    RStarTree::WindowCursor cursor(
        &tree, Rect::Window(points.row(anchor), 10, 16.0));
    uint32_t id = 0;
    int taken = 0;
    while (taken < 10 && cursor.Next(&id)) ++taken;
    benchmark::DoNotOptimize(taken);
  }
}
BENCHMARK(BM_CursorFirstTen);

}  // namespace
}  // namespace dblsh::rtree

BENCHMARK_MAIN();
