// Reproduces Figure 8: recall and overall ratio when varying k in
// {1, 10, 20, ..., 100} at default parameters. The paper's shape: accuracy
// degrades slightly as k grows for every method (fewer candidates per
// returned point), and DB-LSH stays on top by ~5-10% recall at each k.
#include <cstdio>

#include "bench/common.h"
#include "dataset/ground_truth.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh {
namespace {

void RunDataset(const std::string& name, double scale, size_t queries,
                const std::vector<size_t>& ks) {
  const size_t max_k = ks.back();
  eval::Workload base = bench::ProfileWorkload(name, scale, queries, max_k);
  std::printf("Dataset %s (n = %zu, d = %zu)\n", name.c_str(),
              base.data.rows(), base.data.cols());

  std::vector<std::string> headers = {"Method"};
  for (size_t k : ks) headers.push_back("k=" + std::to_string(k));
  eval::Table recall_table(headers);
  eval::Table ratio_table(headers);

  const auto methods = eval::MakePaperMethods(base.data.rows());
  for (const auto& method : methods) {
    std::vector<std::string> recall_row = {method->Name()};
    std::vector<std::string> ratio_row = {method->Name()};
    // Build once; sweep k at query time (all methods take k per query).
    if (!method->Build(&base.data).ok()) continue;
    for (size_t k : ks) {
      double recall = 0.0, ratio = 0.0;
      for (size_t q = 0; q < base.queries.rows(); ++q) {
        const auto answer = method->Query(base.queries.row(q), k);
        const std::vector<Neighbor> gt(
            base.ground_truth[q].begin(),
            base.ground_truth[q].begin() +
                std::min(k, base.ground_truth[q].size()));
        recall += eval::Recall(answer, gt);
        ratio += eval::OverallRatio(answer, gt);
      }
      recall_row.push_back(
          eval::Table::Fmt(recall / double(base.queries.rows()), 3));
      ratio_row.push_back(
          eval::Table::Fmt(ratio / double(base.queries.rows()), 4));
    }
    recall_table.AddRow(std::move(recall_row));
    ratio_table.AddRow(std::move(ratio_row));
  }
  std::printf("Fig. 8 recall vs k:\n");
  recall_table.Print();
  std::printf("Fig. 8 overall ratio vs k:\n");
  ratio_table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Figure 8: effect of k",
      "Accuracy decays mildly with k for all methods; DB-LSH keeps the "
      "highest recall and smallest ratio at every k (lead of ~5-10% recall "
      "over the second best).");
  const double scale = flags.GetDouble("scale", 0.1);
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 25));
  const std::vector<size_t> ks = {1, 10, 20, 40, 60, 80, 100};
  dblsh::RunDataset(flags.GetString("dataset1", "Gist"), scale, queries, ks);
  dblsh::RunDataset(flags.GetString("dataset2", "TinyImages80M"), scale,
                    queries, ks);
  return 0;
}
