// Ablation benches for the design choices DESIGN.md calls out:
//   bucketing  - dynamic query-centric buckets vs fixed grid cells on the
//                identical (K,L)-index (the paper's DB-LSH vs FB-LSH story)
//   bulkload   - STR bulk loading vs one-by-one R* insertion (the paper
//                credits bulk loading for DB-LSH's smallest indexing time)
//   t_sweep    - candidate budget constant t of Remark 2
//   w0_sweep   - initial bucket width w0 = 2 gamma c^2 of Lemma 3
// Run all by default or one via --exp=<name>.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh {
namespace {

void RunBucketing(const eval::Workload& workload) {
  std::printf("--- Ablation: dynamic vs fixed bucketing (same K, L, t) ---\n");
  eval::Table table({"Bucketing", "QueryTime", "Recall", "OverallRatio",
                     "AvgCandidates"});
  for (const bool dynamic : {true, false}) {
    const std::string spec = std::string("DB-LSH,k=8,l=5,t=40,bucketing=") +
                             (dynamic ? "dynamic" : "fixed");
    auto result = eval::RunSpec(spec, workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({dynamic ? "dynamic (DB-LSH)" : "fixed grid (FB-LSH)",
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4),
                  eval::Table::Fmt(r.overall_ratio, 4),
                  eval::Table::Fmt(r.avg_candidates, 0)});
  }
  table.Print();
  std::printf("\n");
}

void RunBulkLoad(const eval::Workload& workload) {
  std::printf("--- Ablation: STR bulk loading vs R* insertion ---\n");
  eval::Table table({"Construction", "IndexingTime(s)", "QueryTime",
                     "Recall"});
  for (const bool bulk : {true, false}) {
    const std::string spec =
        std::string("DB-LSH,bulk_load=") + (bulk ? "1" : "0");
    auto result = eval::RunSpec(spec, workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({bulk ? "STR bulk load" : "one-by-one R* insert",
                  eval::Table::Fmt(r.indexing_time_sec, 3),
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4)});
  }
  table.Print();
  std::printf("\n");
}

void RunTSweep(const eval::Workload& workload) {
  std::printf("--- Ablation: candidate budget constant t (Remark 2) ---\n");
  eval::Table table({"t", "Budget 2tL+k", "QueryTime", "Recall",
                     "OverallRatio"});
  for (const size_t t : {5, 10, 20, 40, 80, 160, 320}) {
    auto result =
        eval::RunSpec("DB-LSH,l=5,t=" + std::to_string(t), workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({std::to_string(t),
                  std::to_string(2 * t * 5 + workload.k),
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4),
                  eval::Table::Fmt(r.overall_ratio, 4)});
  }
  table.Print();
  std::printf("\n");
}

void RunBackend(const eval::Workload& workload) {
  std::printf("--- Ablation: window-query index backend ---\n");
  eval::Table table({"Backend", "IndexingTime(s)", "QueryTime", "Recall"});
  for (const bool rtree : {true, false}) {
    const std::string spec =
        std::string("DB-LSH,backend=") + (rtree ? "rtree" : "kdtree");
    auto result = eval::RunSpec(spec, workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({rtree ? "R*-tree (paper)" : "kd-tree",
                  eval::Table::Fmt(r.indexing_time_sec, 3),
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4)});
  }
  table.Print();
  std::printf("\n");
}

void RunEarlyStop(const eval::Workload& workload) {
  std::printf(
      "--- Ablation: early-stop slack (Sec. VII future work) ---\n");
  eval::Table table({"Slack", "QueryTime", "Recall", "OverallRatio",
                     "AvgCandidates"});
  for (const double slack : {1.0, 1.25, 1.5, 2.0, 3.0}) {
    auto result = eval::RunSpec(
        "DB-LSH,early_stop_slack=" + eval::Table::Fmt(slack, 2), workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({eval::Table::Fmt(slack, 2),
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4),
                  eval::Table::Fmt(r.overall_ratio, 4),
                  eval::Table::Fmt(r.avg_candidates, 0)});
  }
  table.Print();
  std::printf("\n");
}

void RunW0Sweep(const eval::Workload& workload) {
  std::printf("--- Ablation: initial bucket width w0 = 2 gamma c^2 ---\n");
  eval::Table table({"gamma", "w0", "QueryTime", "Recall", "OverallRatio",
                     "AvgCandidates"});
  const double c = 1.5;
  for (const double gamma : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    const double w0 = 2.0 * gamma * c * c;
    auto result = eval::RunSpec("DB-LSH,c=" + eval::Table::Fmt(c, 2) +
                                    ",w0=" + eval::Table::Fmt(w0, 3),
                                workload);
    if (!result.ok()) continue;
    const auto& r = result.value();
    table.AddRow({eval::Table::Fmt(gamma, 1),
                  eval::Table::Fmt(w0, 2),
                  eval::Table::FmtMs(r.avg_query_ms),
                  eval::Table::Fmt(r.recall, 4),
                  eval::Table::Fmt(r.overall_ratio, 4),
                  eval::Table::Fmt(r.avg_candidates, 0)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Ablations: DB-LSH design choices",
      "Dynamic bucketing beats fixed at equal budget; bulk loading builds "
      "far faster than insertion with identical query quality; recall "
      "saturates as t grows; moderate gamma balances candidate quality vs "
      "window cost.");
  const double scale = flags.GetDouble("scale", 0.1);
  const auto queries = static_cast<size_t>(flags.GetInt("queries", 25));
  const auto k = static_cast<size_t>(flags.GetInt("k", 20));
  const dblsh::eval::Workload workload = dblsh::bench::ProfileWorkload(
      flags.GetString("dataset", "Deep1M"), scale, queries, k);
  std::printf("Dataset %s (n = %zu, d = %zu)\n\n", workload.name.c_str(),
              workload.data.rows(), workload.data.cols());

  const std::string exp = flags.GetString("exp", "all");
  if (exp == "all" || exp == "bucketing") dblsh::RunBucketing(workload);
  if (exp == "all" || exp == "bulkload") dblsh::RunBulkLoad(workload);
  if (exp == "all" || exp == "t_sweep") dblsh::RunTSweep(workload);
  if (exp == "all" || exp == "w0_sweep") dblsh::RunW0Sweep(workload);
  if (exp == "all" || exp == "backend") dblsh::RunBackend(workload);
  if (exp == "all" || exp == "early_stop") dblsh::RunEarlyStop(workload);
  return 0;
}
