// Serving bench: concurrent read throughput of a Collection under a
// 95/5 read/write mix — the workload shape the Collection façade exists
// for. One writer thread streams Upsert/Delete traffic (paced at ~5% of
// the measured read rate) while N reader threads hammer Search on the
// collection's DB-LSH index, whose thread-safe read path lets readers fan
// out without serializing; the writer-priority lock keeps mutations
// committing promptly under read saturation. For each reader count the
// table reports aggregate read QPS with the writer idle (read-only
// baseline) and with the writer active, plus the achieved write rate —
// the cost of coherent concurrent mutability is the gap between the two
// columns.
//
// Flags: --n (initial points, default 50000), --dim (32), --k (10),
// --readers (max reader threads, default 8; the sweep doubles from 1),
// --duration-ms (per measurement cell, default 1000), --seed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/collection.h"
#include "dataset/synthetic.h"
#include "eval/table.h"
#include "util/random.h"
#include "util/timer.h"

namespace dblsh {
namespace {

struct MixResult {
  double read_qps = 0.0;
  double avg_read_ms = 0.0;
  double write_ops_per_sec = 0.0;
};

// Runs `readers` query threads for ~duration_ms; when `write_interval_ms`
// is positive, the calling thread concurrently performs one mutation per
// interval (alternating upsert/delete so the live count stays flat).
MixResult RunMix(Collection& collection, const FloatMatrix& cloud,
                 size_t readers, size_t k, double duration_ms,
                 double write_interval_ms, uint64_t seed) {
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  const size_t dim = cloud.cols();
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r]() {
      Rng rng(seed ^ (0xFEED + r));
      std::vector<float> q(dim);
      QueryRequest request;
      request.k = k;
      size_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const float* base = cloud.row(rng.UniformInt(cloud.rows()));
        for (size_t j = 0; j < dim; ++j) {
          q[j] = base[j] + static_cast<float>(rng.Gaussian() * 2.0);
        }
        auto got = collection.Search(q.data(), request, "serving");
        if (!got.ok()) break;  // surfaced by the near-zero QPS row
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Writer loop on this thread: pace mutations at the requested interval,
  // sleeping between ops so the mix stays at the target ratio.
  Rng rng(seed ^ 0xB055);
  size_t writes = 0;
  std::vector<uint32_t> inserted;
  Timer wall;
  if (write_interval_ms > 0.0) {
    double next_write_ms = write_interval_ms;
    while (wall.ElapsedMs() < duration_ms) {
      if (wall.ElapsedMs() < next_write_ms) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      next_write_ms += write_interval_ms;
      if (inserted.size() > 64 && rng.NextDouble() < 0.5) {
        const size_t pick = rng.UniformInt(inserted.size());
        if (collection.Delete(inserted[pick]).ok()) ++writes;
        inserted[pick] = inserted.back();
        inserted.pop_back();
      } else {
        auto up =
            collection.Upsert(cloud.row(rng.UniformInt(cloud.rows())), dim);
        if (up.ok()) {
          inserted.push_back(up.value());
          ++writes;
        }
      }
    }
  } else {
    while (wall.ElapsedMs() < duration_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double elapsed_ms = wall.ElapsedMs();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  MixResult result;
  const auto total_reads = static_cast<double>(reads.load());
  result.read_qps = 1000.0 * total_reads / elapsed_ms;
  result.avg_read_ms =
      total_reads > 0 ? double(readers) * elapsed_ms / total_reads : 0.0;
  result.write_ops_per_sec = 1000.0 * double(writes) / elapsed_ms;
  return result;
}

int Run(const bench::Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetInt("n", 50000));
  const auto dim = static_cast<size_t>(flags.GetInt("dim", 32));
  const auto k = static_cast<size_t>(flags.GetInt("k", 10));
  const auto max_readers = static_cast<size_t>(flags.GetInt("readers", 8));
  const auto duration_ms =
      static_cast<double>(flags.GetInt("duration-ms", 1000));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  ClusteredSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.clusters = 32;
  spec.seed = seed;
  const FloatMatrix cloud = GenerateClustered(spec);

  Timer build_timer;
  auto made = Collection::FromSpec(
      "collection: DB-LSH,name=serving",
      std::make_unique<FloatMatrix>(cloud));
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *made.value();
  std::printf("n = %zu, dim = %zu, k = %zu; built in %.3f s; "
              "%.0f ms per measurement cell\n\n",
              n, dim, k, build_timer.ElapsedSec(), duration_ms);

  eval::Table table({"Readers", "Read-only QPS", "95/5 QPS", "ms/query",
                     "Writes/s", "QPS kept"});
  for (size_t readers = 1; readers <= max_readers; readers *= 2) {
    const MixResult baseline = RunMix(collection, cloud, readers, k,
                                      duration_ms, 0.0, seed);
    // Target: writes = 5% of total ops => one write per 19 reads.
    const double write_interval_ms =
        baseline.read_qps > 0.0 ? 1000.0 / (baseline.read_qps / 19.0) : 10.0;
    const MixResult mixed = RunMix(collection, cloud, readers, k,
                                   duration_ms, write_interval_ms, seed + 1);
    table.AddRow({std::to_string(readers),
                  eval::Table::Fmt(baseline.read_qps, 0),
                  eval::Table::Fmt(mixed.read_qps, 0),
                  eval::Table::Fmt(mixed.avg_read_ms, 3),
                  eval::Table::Fmt(mixed.write_ops_per_sec, 1),
                  eval::Table::Fmt(
                      baseline.read_qps > 0.0
                          ? 100.0 * mixed.read_qps / baseline.read_qps
                          : 0.0, 1) + "%"});
  }
  table.Print();
  std::printf("\nlive points at end: %zu; epoch %llu (committed "
              "mutations)\n", collection.size(),
              static_cast<unsigned long long>(collection.epoch()));
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Serving workload: concurrent readers under a 95/5 read/write mix",
      "The Collection façade serves DB-LSH's thread-safe read path to N "
      "reader threads while one writer streams transactional upserts and "
      "deletes; the writer-priority lock keeps mutations committing under "
      "read saturation.");
  return dblsh::Run(flags);
}
