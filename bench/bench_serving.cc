// Serving bench: concurrent read throughput of a Collection under a
// 95/5 read/write mix — the workload shape the Collection façade exists
// for — swept over shard counts. One writer streams Upsert/Delete traffic
// (paced at ~5% of the measured read rate) while N reader tasks on a
// dedicated executor hammer Search on the collection's DB-LSH index; a
// sharded collection additionally fans each query out across its shards
// on the process-default executor and merges exactly. For each (shards,
// readers) cell the table reports aggregate read QPS with the writer idle
// (read-only baseline) and with the writer active, mixed-run p50/p99 read
// latency, and the achieved write rate — the cost of coherent concurrent
// mutability is the gap between the two QPS columns, and the payoff of
// sharding is the read-only QPS ratio against the shards=1 row at the
// same reader count (printed at the end).
//
// A second, network-facing section (--network, default on) serves the
// same collection through the framed-TCP front-end (src/serve/) over
// loopback and measures the full client-to-client path: a closed loop of
// N connected clients (read-only, then a 95/5 read/write mix), an
// open-loop pipelined client at a bounded pipeline depth, and two
// deterministic robustness probes (expired deadlines answered typed,
// overload shed retryable). Every cell reports p50/p99 round-trip
// latency, achieved QPS, and the coalescer's achieved batch sizes; shed
// and deadline-rejection counts land in BENCH_serving.json alongside.
//
// Two durable epilogues close the run: a recovery section (checkpoint,
// lay a WAL tail, time a cold Collection::Open) and a replication
// section (serve a durable primary over loopback, bootstrap a follower
// from its checkpoint snapshots, stream a write burst, and measure the
// follower's catch-up — shipped/applied counts, final lag, wall time).
//
// Flags: --n (initial points, default 50000), --dim (32), --k (10),
// --readers (max reader tasks, default 8; the sweep doubles from 1),
// --shards (comma list of shard counts, default "1,4"), --duration-ms
// (per measurement cell, default 1000), --seed, --storage (row store
// backend, fp32, sq8, or pq, default fp32), --pq-m (PQ subspace count
// when --storage=pq, 0 = floor(0.48 * dim)), --network (0 disables the
// loopback section), --clients (closed-loop connections, default 8),
// --window-us (coalescing window, default 1000), --pipeline-depth
// (open-loop outstanding requests, default 32), --json[=PATH] (write
// machine-readable results, default path BENCH_serving.json).
#include <algorithm>
#include <atomic>
#include <unistd.h>  // getpid: unique temp dir for the recovery section

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>  // std::this_thread::sleep_for (no threads are spawned)
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "core/collection.h"
#include "dataset/synthetic.h"
#include "eval/table.h"
#include "exec/task_executor.h"
#include "replication/replica.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/perfmon.h"
#include "util/random.h"
#include "util/timer.h"

namespace dblsh {
namespace {

struct MixResult {
  double read_qps = 0.0;
  double avg_read_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double write_ops_per_sec = 0.0;
};

// Runs `readers` query tasks on `reader_pool` for ~duration_ms; when
// `write_interval_ms` is positive, the calling thread concurrently
// performs one mutation per interval (alternating upsert/delete so the
// live count stays flat).
MixResult RunMix(Collection& collection, const FloatMatrix& cloud,
                 size_t readers, size_t k, double duration_ms,
                 double write_interval_ms, uint64_t seed,
                 exec::TaskExecutor* reader_pool) {
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;
  std::vector<std::future<void>> tasks;
  tasks.reserve(readers);
  const size_t dim = cloud.cols();
  for (size_t r = 0; r < readers; ++r) {
    tasks.push_back(reader_pool->Submit([&, r]() {
      Rng rng(seed ^ (0xFEED + r));
      std::vector<float> q(dim);
      QueryRequest request;
      request.k = k;
      size_t local = 0;
      std::vector<double> local_ms;
      local_ms.reserve(1 << 14);
      while (!stop.load(std::memory_order_acquire)) {
        const float* base = cloud.row(rng.UniformInt(cloud.rows()));
        for (size_t j = 0; j < dim; ++j) {
          q[j] = base[j] + static_cast<float>(rng.Gaussian() * 2.0);
        }
        Timer read_timer;
        auto got = collection.Search(q.data(), request, "serving");
        if (!got.ok()) break;  // surfaced by the near-zero QPS row
        local_ms.push_back(read_timer.ElapsedMs());
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
      std::lock_guard lock(latency_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
    }));
  }

  // Writer loop on this thread: pace mutations at the requested interval,
  // sleeping between ops so the mix stays at the target ratio.
  Rng rng(seed ^ 0xB055);
  size_t writes = 0;
  std::vector<uint32_t> inserted;
  Timer wall;
  if (write_interval_ms > 0.0) {
    double next_write_ms = write_interval_ms;
    while (wall.ElapsedMs() < duration_ms) {
      if (wall.ElapsedMs() < next_write_ms) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      next_write_ms += write_interval_ms;
      if (inserted.size() > 64 && rng.NextDouble() < 0.5) {
        const size_t pick = rng.UniformInt(inserted.size());
        if (collection.Delete(inserted[pick]).ok()) ++writes;
        inserted[pick] = inserted.back();
        inserted.pop_back();
      } else {
        auto up =
            collection.Upsert(cloud.row(rng.UniformInt(cloud.rows())), dim);
        if (up.ok()) {
          inserted.push_back(up.value());
          ++writes;
        }
      }
    }
  } else {
    while (wall.ElapsedMs() < duration_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double elapsed_ms = wall.ElapsedMs();
  stop.store(true, std::memory_order_release);
  for (auto& task : tasks) task.get();
  collection.WaitForRebuilds();  // background swaps land outside the cell

  MixResult result;
  const auto total_reads = static_cast<double>(reads.load());
  result.read_qps = 1000.0 * total_reads / elapsed_ms;
  result.avg_read_ms =
      total_reads > 0 ? double(readers) * elapsed_ms / total_reads : 0.0;
  result.p50_ms = bench::Percentile(&latencies_ms, 50.0);
  result.p99_ms = bench::Percentile(&latencies_ms, 99.0);
  result.write_ops_per_sec = 1000.0 * double(writes) / elapsed_ms;
  return result;
}

// One measured cell of the loopback network section.
struct NetResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double writes_per_sec = 0.0;
  double mean_batch = 0.0;   // over OK replies' achieved batch sizes
  uint64_t max_batch = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;              // retryable rejections observed
  uint64_t rejected_deadline = 0;  // typed deadline rejections observed
};

bench::Json NetJson(const NetResult& r) {
  return bench::Json::Object()
      .Set("qps", r.qps)
      .Set("p50_ms", r.p50_ms)
      .Set("p99_ms", r.p99_ms)
      .Set("writes_per_sec", r.writes_per_sec)
      .Set("mean_batch", r.mean_batch)
      .Set("max_batch", r.max_batch)
      .Set("ok", r.ok)
      .Set("shed", r.shed)
      .Set("rejected_deadline", r.rejected_deadline);
}

// Closed loop: `clients` connections, each a task on `pool` driving one
// blocking Search round-trip at a time; with a positive write interval
// the calling thread concurrently streams Upsert/Delete traffic through
// its own connection (the 95/5 mix, end to end over the wire).
NetResult RunNetClosed(uint16_t port, const FloatMatrix& cloud,
                       size_t clients, size_t k, double duration_ms,
                       double write_interval_ms, uint64_t seed,
                       exec::TaskExecutor* pool) {
  std::atomic<bool> stop{false};
  std::mutex mutex;
  std::vector<double> latencies_ms;
  NetResult result;
  std::vector<std::future<void>> tasks;
  const size_t dim = cloud.cols();
  for (size_t c = 0; c < clients; ++c) {
    tasks.push_back(pool->Submit([&, c]() {
      auto made = serve::Client::Connect("127.0.0.1", port);
      if (!made.ok()) return;
      auto& client = *made.value();
      Rng rng(seed ^ (0xC11E + c));
      std::vector<float> q(dim);
      QueryRequest request;
      request.k = k;
      std::vector<double> local_ms;
      uint64_t batch_sum = 0, batch_max = 0, ok = 0, shed = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const float* base = cloud.row(rng.UniformInt(cloud.rows()));
        for (size_t j = 0; j < dim; ++j) {
          q[j] = base[j] + static_cast<float>(rng.Gaussian() * 2.0);
        }
        Timer rt;
        auto got = client.Search("main", q.data(), dim, request);
        if (got.ok()) {
          local_ms.push_back(rt.ElapsedMs());
          batch_sum += got.value().batch_size;
          batch_max = std::max<uint64_t>(batch_max, got.value().batch_size);
          ++ok;
        } else if (got.status().retryable()) {
          ++shed;
        } else {
          break;  // connection-level failure: surfaced by a near-zero cell
        }
      }
      std::lock_guard lock(mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      result.ok += ok;
      result.shed += shed;
      result.mean_batch += static_cast<double>(batch_sum);  // sum for now
      result.max_batch = std::max(result.max_batch, batch_max);
    }));
  }

  // Writer loop on this thread, over its own connection.
  uint64_t writes = 0;
  Timer wall;
  if (write_interval_ms > 0.0) {
    auto made = serve::Client::Connect("127.0.0.1", port);
    if (made.ok()) {
      auto& writer = *made.value();
      Rng rng(seed ^ 0xB055);
      std::vector<uint32_t> inserted;
      double next_write_ms = write_interval_ms;
      while (wall.ElapsedMs() < duration_ms) {
        if (wall.ElapsedMs() < next_write_ms) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        next_write_ms += write_interval_ms;
        if (inserted.size() > 64 && rng.NextDouble() < 0.5) {
          const size_t pick = rng.UniformInt(inserted.size());
          if (writer.Delete("main", inserted[pick]).ok()) ++writes;
          inserted[pick] = inserted.back();
          inserted.pop_back();
        } else {
          const float* row = cloud.row(rng.UniformInt(cloud.rows()));
          auto up = writer.Upsert("main", row, cloud.cols());
          if (up.ok()) {
            inserted.push_back(up.value());
            ++writes;
          }
        }
      }
    }
  } else {
    while (wall.ElapsedMs() < duration_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double elapsed_ms = wall.ElapsedMs();
  stop.store(true, std::memory_order_release);
  for (auto& task : tasks) task.get();

  result.qps = 1000.0 * static_cast<double>(result.ok) / elapsed_ms;
  result.p50_ms = bench::Percentile(&latencies_ms, 50.0);
  result.p99_ms = bench::Percentile(&latencies_ms, 99.0);
  result.writes_per_sec = 1000.0 * static_cast<double>(writes) / elapsed_ms;
  result.mean_batch =
      result.ok > 0 ? result.mean_batch / static_cast<double>(result.ok)
                    : 0.0;
  return result;
}

// Open loop: one connection, a sender task keeping up to `depth`
// pipelined Searches outstanding while this thread receives — the
// saturating shape that gives the coalescer the most companions per
// window.
NetResult RunNetOpen(uint16_t port, const FloatMatrix& cloud, size_t k,
                     double duration_ms, size_t depth, uint64_t seed,
                     exec::TaskExecutor* pool) {
  NetResult result;
  auto made = serve::Client::Connect("127.0.0.1", port);
  if (!made.ok()) return result;
  auto& client = *made.value();

  std::mutex mutex;
  std::unordered_map<uint64_t, std::chrono::steady_clock::time_point> sent_at;
  std::atomic<uint64_t> num_sent{0};
  std::atomic<uint64_t> num_received{0};
  std::atomic<bool> sender_done{false};
  const size_t dim = cloud.cols();

  auto sender = pool->Submit([&]() {
    Rng rng(seed ^ 0x09E2);
    std::vector<float> q(dim);
    QueryRequest request;
    request.k = k;
    Timer wall;
    while (wall.ElapsedMs() < duration_ms) {
      if (num_sent.load() - num_received.load() >= depth) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      const float* base = cloud.row(rng.UniformInt(cloud.rows()));
      for (size_t j = 0; j < dim; ++j) {
        q[j] = base[j] + static_cast<float>(rng.Gaussian() * 2.0);
      }
      const auto now = std::chrono::steady_clock::now();
      auto id = client.SendSearch("main", q.data(), dim, request);
      if (!id.ok()) break;
      {
        std::lock_guard lock(mutex);
        sent_at[id.value()] = now;
      }
      num_sent.fetch_add(1);
    }
    sender_done.store(true, std::memory_order_release);
  });

  std::vector<double> latencies_ms;
  uint64_t batch_sum = 0;
  Timer wall;
  while (true) {
    if (num_received.load() >= num_sent.load()) {
      if (sender_done.load(std::memory_order_acquire) &&
          num_received.load() >= num_sent.load()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    auto got = client.ReceiveSearchReply();
    if (!got.ok()) break;
    num_received.fetch_add(1);
    std::chrono::steady_clock::time_point t0;
    {
      std::lock_guard lock(mutex);
      const auto it = sent_at.find(got.value().request_id);
      if (it == sent_at.end()) continue;
      t0 = it->second;
      sent_at.erase(it);
    }
    if (got.value().status.ok()) {
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
      batch_sum += got.value().reply.batch_size;
      result.max_batch =
          std::max<uint64_t>(result.max_batch, got.value().reply.batch_size);
      ++result.ok;
    } else if (got.value().status.retryable()) {
      ++result.shed;
    } else if (got.value().status.code() == StatusCode::kDeadlineExceeded) {
      ++result.rejected_deadline;
    }
  }
  sender.get();
  const double elapsed_ms = wall.ElapsedMs();

  result.qps = 1000.0 * static_cast<double>(result.ok) / elapsed_ms;
  result.p50_ms = bench::Percentile(&latencies_ms, 50.0);
  result.p99_ms = bench::Percentile(&latencies_ms, 99.0);
  result.mean_batch =
      result.ok > 0
          ? static_cast<double>(batch_sum) / static_cast<double>(result.ok)
          : 0.0;
  return result;
}

std::vector<size_t> ParseShardList(const std::string& text) {
  std::vector<size_t> shards;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string token = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? text.size() : comma + 1;
    if (token.empty()) continue;
    const long value = std::atol(token.c_str());
    if (value >= 1) shards.push_back(static_cast<size_t>(value));
  }
  if (shards.empty()) shards.push_back(1);
  return shards;
}

int Run(const bench::Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetInt("n", 50000));
  const auto dim = static_cast<size_t>(flags.GetInt("dim", 32));
  const auto k = static_cast<size_t>(flags.GetInt("k", 10));
  const auto max_readers = static_cast<size_t>(flags.GetInt("readers", 8));
  const auto duration_ms =
      static_cast<double>(flags.GetInt("duration-ms", 1000));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const std::vector<size_t> shard_counts =
      ParseShardList(flags.GetString("shards", "1,4"));
  const std::string storage = flags.GetString("storage", "fp32");
  // Folded into every collection spec below; the fp32 default keeps the
  // spec byte-identical to what earlier baselines were produced with.
  // For pq the subspace count rides along: --pq-m, defaulting to the
  // finest codebook under 0.12x of the fp32 payload (floor(0.48 * dim)).
  std::string storage_suffix = storage == "fp32" ? "" : ",storage=" + storage;
  if (storage == "pq") {
    size_t pq_m = static_cast<size_t>(flags.GetInt("pq-m", 0));
    if (pq_m == 0) pq_m = std::max<size_t>(1, (dim * 48) / 100);
    storage_suffix += ",m=" + std::to_string(pq_m);
  }

  ClusteredSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.clusters = 32;
  spec.seed = seed;
  const FloatMatrix cloud = GenerateClustered(spec);

  exec::TaskExecutor reader_pool(max_readers);
  bench::Json json = bench::Json::Object();
  json.Set("bench", "serving")
      .Set("n", n)
      .Set("dim", dim)
      .Set("k", k)
      .Set("duration_ms", duration_ms)
      .Set("hardware_concurrency", exec::HardwareConcurrency());
  bench::Json cells = bench::Json::Array();
  // read-only QPS at the full reader count, per shard count (for the
  // scaling summary at the end).
  std::vector<double> peak_qps(shard_counts.size(), 0.0);

  for (size_t si = 0; si < shard_counts.size(); ++si) {
    const size_t shards = shard_counts[si];
    Timer build_timer;
    auto made = Collection::FromSpec(
        "collection,shards=" + std::to_string(shards) +
            ",rebuild=background" + storage_suffix + ": DB-LSH,name=serving",
        std::make_unique<FloatMatrix>(cloud));
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    Collection& collection = *made.value();
    if (si == 0) {
      const CollectionStorageInfo storage_info = collection.Storage();
      json.Set("storage", storage_info.kind)
          .Set("bytes_per_vector", storage_info.bytes_per_vector)
          .Set("rerank", storage_info.rerank)
          .Set("store_resident_bytes", storage_info.resident_bytes);
    }
    std::printf("--- shards = %zu: n = %zu, dim = %zu, k = %zu; built in "
                "%.3f s; %.0f ms per measurement cell ---\n\n",
                shards, n, dim, k, build_timer.ElapsedSec(), duration_ms);

    eval::Table table({"Readers", "Read-only QPS", "95/5 QPS", "p50 ms",
                       "p99 ms", "Writes/s", "QPS kept"});
    for (size_t readers = 1; readers <= max_readers; readers *= 2) {
      const MixResult baseline = RunMix(collection, cloud, readers, k,
                                        duration_ms, 0.0, seed, &reader_pool);
      // Target: writes = 5% of total ops => one write per 19 reads.
      const double write_interval_ms =
          baseline.read_qps > 0.0 ? 1000.0 / (baseline.read_qps / 19.0)
                                  : 10.0;
      const MixResult mixed =
          RunMix(collection, cloud, readers, k, duration_ms,
                 write_interval_ms, seed + 1, &reader_pool);
      table.AddRow({std::to_string(readers),
                    eval::Table::Fmt(baseline.read_qps, 0),
                    eval::Table::Fmt(mixed.read_qps, 0),
                    eval::Table::Fmt(mixed.p50_ms, 3),
                    eval::Table::Fmt(mixed.p99_ms, 3),
                    eval::Table::Fmt(mixed.write_ops_per_sec, 1),
                    eval::Table::Fmt(
                        baseline.read_qps > 0.0
                            ? 100.0 * mixed.read_qps / baseline.read_qps
                            : 0.0, 1) + "%"});
      if (readers == max_readers) peak_qps[si] = baseline.read_qps;
      cells.Append(bench::Json::Object()
                       .Set("shards", shards)
                       .Set("readers", readers)
                       .Set("read_only_qps", baseline.read_qps)
                       .Set("mixed_qps", mixed.read_qps)
                       .Set("read_only_p50_ms", baseline.p50_ms)
                       .Set("read_only_p99_ms", baseline.p99_ms)
                       .Set("mixed_p50_ms", mixed.p50_ms)
                       .Set("mixed_p99_ms", mixed.p99_ms)
                       .Set("writes_per_sec", mixed.write_ops_per_sec));
    }
    table.Print();
    std::printf("\nlive points at end: %zu; epoch %llu (committed "
                "mutations)\n\n", collection.size(),
                static_cast<unsigned long long>(collection.epoch()));
  }

  // Scaling summary: read-only QPS at the full reader count, normalized to
  // the shards=1 row. On a machine with cores to spare beyond the reader
  // count, the shard fan-out converts them into intra-query parallelism;
  // with readers already saturating every core, expect ~1x (the merge adds
  // work, it cannot add cores).
  bench::Json scaling = bench::Json::Array();
  std::printf("read-only QPS scaling at %zu readers (vs shards=1):\n",
              max_readers);
  for (size_t si = 0; si < shard_counts.size(); ++si) {
    const double ratio =
        peak_qps[0] > 0.0 ? peak_qps[si] / peak_qps[0] : 0.0;
    std::printf("  shards=%zu: %.0f QPS (%.2fx)\n", shard_counts[si],
                peak_qps[si], ratio);
    scaling.Append(bench::Json::Object()
                       .Set("shards", shard_counts[si])
                       .Set("readers", max_readers)
                       .Set("read_only_qps", peak_qps[si])
                       .Set("vs_single_shard", ratio));
  }
  json.Set("cells", std::move(cells)).Set("scaling", std::move(scaling));

  // ---------------------------------------------------------------------
  // Loopback network section: the same collection behind the framed-TCP
  // front-end, measured client-to-client.
  if (flags.GetInt("network", 1) != 0) {
    const auto clients = static_cast<size_t>(flags.GetInt("clients", 8));
    const auto window_us =
        static_cast<uint32_t>(flags.GetInt("window-us", 1000));
    const auto depth =
        static_cast<size_t>(flags.GetInt("pipeline-depth", 32));

    auto made = Collection::FromSpec(
        "collection,rebuild=background" + storage_suffix +
            ": DB-LSH,name=main",
        std::make_unique<FloatMatrix>(cloud));
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    serve::ServerOptions server_options;
    // Headroom beyond clients + writer: a phase change reconnects all
    // clients while the server is still reaping the previous phase's
    // sockets, and a tight cap would shed the overlap.
    server_options.max_connections = 2 * clients + 3;
    server_options.coalescer.window_us = window_us;
    auto started =
        serve::Server::Start({{"main", made.value().get()}}, server_options);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    serve::Server& server = *started.value();
    std::printf("--- network (loopback :%u): %zu closed-loop clients, "
                "%u us window, open-loop depth %zu ---\n\n",
                server.port(), clients, window_us, depth);

    exec::TaskExecutor client_pool(clients + 1);
    // Let the server reap the previous phase's connections before the
    // next one reconnects its full client set.
    const auto settle = [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    };
    const NetResult closed = RunNetClosed(server.port(), cloud, clients, k,
                                          duration_ms, 0.0, seed,
                                          &client_pool);
    const double write_interval_ms =
        closed.qps > 0.0 ? 1000.0 / (closed.qps / 19.0) : 10.0;
    settle();
    const NetResult mixed =
        RunNetClosed(server.port(), cloud, clients, k, duration_ms,
                     write_interval_ms, seed + 1, &client_pool);
    settle();
    const NetResult open = RunNetOpen(server.port(), cloud, k, duration_ms,
                                      depth, seed + 2, &client_pool);

    eval::Table table({"Cell", "QPS", "p50 ms", "p99 ms", "Mean batch",
                       "Max batch", "Shed", "Writes/s"});
    const auto row = [&](const char* name, const NetResult& r) {
      table.AddRow({name, eval::Table::Fmt(r.qps, 0),
                    eval::Table::Fmt(r.p50_ms, 3),
                    eval::Table::Fmt(r.p99_ms, 3),
                    eval::Table::Fmt(r.mean_batch, 2),
                    std::to_string(r.max_batch), std::to_string(r.shed),
                    eval::Table::Fmt(r.writes_per_sec, 1)});
    };
    row("closed read-only", closed);
    row("closed 95/5", mixed);
    row("open-loop", open);
    table.Print();

    // Deterministic robustness probes: expired budgets answer typed
    // without touching the index; a saturated admission queue sheds
    // retryable. Both land in the committed JSON so CI can assert the
    // contract from the artifact alone.
    uint64_t probe_deadline_rejected = 0;
    uint64_t probe_overload_shed = 0;
    {
      QueryRequest probe_request;
      probe_request.k = k;
      auto probe = serve::Client::Connect("127.0.0.1", server.port());
      if (probe.ok()) {
        const float* q0 = cloud.row(0);
        for (int i = 0; i < 5; ++i) {
          auto got = probe.value()->Search("main", q0, dim, probe_request,
                                          /*deadline_us=*/1);
          if (got.status().code() == StatusCode::kDeadlineExceeded) {
            ++probe_deadline_rejected;
          }
        }
      }
      serve::ServerOptions tiny;
      tiny.coalescer.max_inflight = 1;
      tiny.coalescer.window_us = 50000;
      auto tiny_server =
          serve::Server::Start({{"main", made.value().get()}}, tiny);
      if (tiny_server.ok()) {
        auto c = serve::Client::Connect("127.0.0.1",
                                        tiny_server.value()->port());
        if (c.ok()) {
          for (int i = 0; i < 8; ++i) {
            (void)c.value()->SendSearch("main", cloud.row(0), dim,
                                        probe_request);
          }
          for (int i = 0; i < 8; ++i) {
            auto got = c.value()->ReceiveSearchReply();
            if (got.ok() && got.value().status.retryable()) {
              ++probe_overload_shed;
            }
          }
        }
      }
    }
    std::printf("\nprobes: %llu/5 expired deadlines rejected typed, "
                "%llu/8 overload submissions shed retryable\n\n",
                static_cast<unsigned long long>(probe_deadline_rejected),
                static_cast<unsigned long long>(probe_overload_shed));

    const serve::ServerStats final_stats = server.Stats();
    json.Set("network",
             bench::Json::Object()
                 .Set("clients", clients)
                 .Set("window_us", static_cast<size_t>(window_us))
                 .Set("pipeline_depth", depth)
                 .Set("closed_read_only", NetJson(closed))
                 .Set("closed_mixed", NetJson(mixed))
                 .Set("open_loop", NetJson(open))
                 .Set("server_mean_batch", final_stats.mean_batch_size)
                 .Set("server_max_batch", final_stats.max_batch_size)
                 .Set("server_shed_overload", final_stats.shed_overload)
                 .Set("server_rejected_deadline",
                      final_stats.rejected_deadline)
                 .Set("probe_deadline_rejected", probe_deadline_rejected)
                 .Set("probe_overload_shed", probe_overload_shed));
    server.Shutdown();
  }

  // ---------------------------------------------------------------------
  // Recovery section: checkpoint the cloud into a durable directory, lay
  // down a WAL tail of post-checkpoint upserts, and time a cold
  // Collection::Open (snapshot restore + WAL replay + checkpoint-on-open).
  {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("dblsh_bench_recovery_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    const std::string spec = "collection,durability=" + dir.string() +
                             storage_suffix + ": DB-LSH,name=serving";
    auto made = Collection::FromSpec(
        spec, std::make_unique<FloatMatrix>(cloud));
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    if (Status s = made.value()->Checkpoint(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // WAL tail: ~2% of n (at least 32) upserts past the checkpoint, so
    // the reopen exercises replay and not just the snapshot restore.
    const size_t tail = std::max<size_t>(32, n / 50);
    Rng rng(seed + 17);
    std::vector<float> vec(dim);
    for (size_t i = 0; i < tail; ++i) {
      for (float& x : vec) {
        x = static_cast<float>(rng.NextU64() % 1000) / 7.0f;
      }
      if (auto up = made.value()->Upsert(vec.data(), dim); !up.ok()) {
        std::fprintf(stderr, "%s\n", up.status().ToString().c_str());
        return 1;
      }
    }
    made.value().reset();  // close: WAL tail stays unfolded on disk

    Timer reopen_timer;
    auto reopened = Collection::Open(spec);
    const double reopen_ms = reopen_timer.ElapsedSec() * 1000.0;
    if (!reopened.ok()) {
      std::fprintf(stderr, "%s\n", reopened.status().ToString().c_str());
      return 1;
    }
    const CollectionDurabilityInfo durable = reopened.value()->Durability();
    std::printf("--- recovery: %zu rows restored in %.3f ms (%llu WAL "
                "record(s) replayed, %llu checkpoint(s) since open) ---\n\n",
                reopened.value()->size(), durable.recovery_ms,
                static_cast<unsigned long long>(durable.replayed_records),
                static_cast<unsigned long long>(durable.checkpoints));
    json.Set("recovery",
             bench::Json::Object()
                 .Set("rows", reopened.value()->size())
                 .Set("wal_replayed", durable.replayed_records)
                 .Set("recovery_ms", durable.recovery_ms)
                 .Set("reopen_ms", reopen_ms)
                 .Set("checkpoints", durable.checkpoints));
    reopened.value().reset();
    fs::remove_all(dir);
  }

  // ---------------------------------------------------------------------
  // Replication section: serve a durable primary over loopback, bootstrap
  // a follower from the checkpoint snapshots, stream a write burst at the
  // primary, and measure the follower's catch-up — shipped/applied record
  // counts, per-shard lag at the end, and convergence wall time.
  {
    namespace fs = std::filesystem;
    const std::string pid = std::to_string(::getpid());
    const fs::path primary_dir =
        fs::temp_directory_path() / ("dblsh_bench_repl_primary_" + pid);
    const fs::path replica_dir =
        fs::temp_directory_path() / ("dblsh_bench_repl_replica_" + pid);
    fs::remove_all(primary_dir);
    fs::remove_all(replica_dir);
    const std::string tail_spec =
        storage_suffix + ": DB-LSH,name=serving";
    auto made = Collection::FromSpec(
        "collection,shards=2,durability=" + primary_dir.string() + tail_spec,
        std::make_unique<FloatMatrix>(cloud));
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    Collection& primary = *made.value();
    auto started = serve::Server::Start({{"main", &primary}}, {});
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    serve::Server& server = *started.value();

    replication::ReplicaOptions replica_options;
    replica_options.primary_port = server.port();
    replica_options.spec =
        "collection,shards=2,durability=" + replica_dir.string() + tail_spec;
    replica_options.dir = replica_dir.string();
    Timer bootstrap_timer;
    auto follower = replication::Replica::Start(replica_options);
    const double bootstrap_ms = bootstrap_timer.ElapsedSec() * 1000.0;
    if (!follower.ok()) {
      std::fprintf(stderr, "%s\n", follower.status().ToString().c_str());
      return 1;
    }
    replication::Replica& replica = *follower.value();
    const size_t bootstrap_points = replica.collection()->size();

    // Write burst: ~2% of n (at least 64) upserts streamed at the primary
    // while the follower tails.
    const size_t burst = std::max<size_t>(64, n / 50);
    Rng rng(seed + 23);
    std::vector<float> vec(dim);
    for (size_t i = 0; i < burst; ++i) {
      for (float& x : vec) {
        x = static_cast<float>(rng.NextU64() % 1000) / 7.0f;
      }
      if (auto up = primary.Upsert(vec.data(), dim); !up.ok()) {
        std::fprintf(stderr, "%s\n", up.status().ToString().c_str());
        return 1;
      }
    }

    // Catch-up: poll until every shard's applied LSN reaches the
    // primary's commit watermark (bounded; a stuck follower reports its
    // residual lag instead of wedging the bench).
    Timer catch_up_timer;
    uint64_t final_lag = 0;
    bool converged = false;
    while (catch_up_timer.ElapsedMs() < 30000.0) {
      const std::vector<uint64_t> primary_lsns = primary.ShardAppliedLsns();
      const serve::ReplicationReport report = replica.Report();
      final_lag = 0;
      for (size_t s = 0; s < primary_lsns.size(); ++s) {
        const uint64_t applied =
            s < report.shards.size() ? report.shards[s].applied_lsn : 0;
        final_lag += primary_lsns[s] > applied ? primary_lsns[s] - applied : 0;
      }
      if (final_lag == 0) {
        converged = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const double catch_up_ms = catch_up_timer.ElapsedMs();
    const serve::ReplicationReport report = replica.Report();
    const serve::ServerStats stats = server.Stats();
    std::printf("--- replication: bootstrapped %zu rows in %.3f ms; %zu "
                "burst writes caught up in %.3f ms (%llu shipped, %llu "
                "applied, final lag %llu) ---\n\n",
                bootstrap_points, bootstrap_ms, burst, catch_up_ms,
                static_cast<unsigned long long>(
                    stats.replication_records_shipped),
                static_cast<unsigned long long>(report.records_applied),
                static_cast<unsigned long long>(final_lag));
    json.Set("replication",
             bench::Json::Object()
                 .Set("bootstrap_points", bootstrap_points)
                 .Set("bootstrap_ms", bootstrap_ms)
                 .Set("burst_writes", burst)
                 .Set("catch_up_ms", catch_up_ms)
                 .Set("records_shipped", stats.replication_records_shipped)
                 .Set("records_applied", report.records_applied)
                 .Set("subscriptions", stats.replication_subscriptions)
                 .Set("final_lag", final_lag)
                 .Set("converged", static_cast<uint64_t>(converged ? 1 : 0)));
    replica.Stop();
    follower.value().reset();
    server.Shutdown();
    started.value().reset();
    made.value().reset();
    fs::remove_all(primary_dir);
    fs::remove_all(replica_dir);
  }

  if (flags.Has("json")) {
    std::string path = flags.GetString("json", "BENCH_serving.json");
    if (path == "1") path = "BENCH_serving.json";  // bare --json
    const perfmon::MemoryUsage mem = perfmon::SampleMemory();
    json.Set("memory", bench::Json::Object()
                           .Set("resident_bytes", mem.resident_bytes)
                           .Set("peak_resident_bytes",
                                mem.peak_resident_bytes));
    if (!json.WriteTo(path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Serving workload: concurrent readers under a 95/5 read/write mix, "
      "swept over shard counts",
      "The Collection façade serves DB-LSH's thread-safe read path to N "
      "reader tasks while one writer streams transactional upserts and "
      "deletes; sharding fans each query out across segments on the "
      "task executor and merges exactly, and background rebuilds keep "
      "the writer unblocked.");
  return dblsh::Run(flags);
}
