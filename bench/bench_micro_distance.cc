// Microbenchmark for the SIMD distance-kernel subsystem (src/simd/).
//
// Measures the candidate-verification hot path: one query against a stream
// of randomly-ordered row ids, comparing
//   (a) the historical code path — a per-candidate call of the *scalar*
//       one-to-one kernel (what every method's verification loop did before
//       the batch migration), against
//   (b) each compiled-and-runnable tier's one-to-many batch kernel
//       (prefetched, as used by core/verify.h).
//
// Self-timed on purpose (no google-benchmark dependency), so it always
// builds and the "batch >= 2x scalar at dim >= 128" acceptance check can
// run anywhere. Usage: bench_micro_distance [n_rows]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "simd/simd.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using dblsh::Rng;
using dblsh::Timer;
using dblsh::simd::DistanceKernels;
using dblsh::simd::KernelKind;

constexpr double kMinMeasureSec = 0.05;

/// Runs `fn` in growing rounds until it has consumed kMinMeasureSec of
/// wall clock; returns nanoseconds per inner item.
template <typename Fn>
double TimePerItem(size_t items_per_call, Fn&& fn) {
  size_t reps = 1;
  for (;;) {
    Timer t;
    for (size_t r = 0; r < reps; ++r) fn();
    const double sec = t.ElapsedSec();
    if (sec >= kMinMeasureSec) {
      return sec * 1e9 / (static_cast<double>(reps) *
                          static_cast<double>(items_per_call));
    }
    reps = sec <= 0.0 ? reps * 8 : reps * 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Working-set cap: this bench measures *kernel* throughput, so the
  // candidate rows must stay cache-resident — out of cache, every kernel
  // degenerates to the same memory-bandwidth number. Pass an explicit row
  // count to measure a bandwidth-bound sweep instead.
  const size_t max_bytes = size_t{1536} * 1024;
  const size_t n_override = argc > 1 ? std::stoul(argv[1]) : 0;
  const size_t dims[] = {16, 64, 128, 384, 960};

  std::vector<KernelKind> tiers = {KernelKind::kScalar};
  if (dblsh::simd::Supported(KernelKind::kAvx2)) {
    tiers.push_back(KernelKind::kAvx2);
  }
  if (dblsh::simd::Supported(KernelKind::kAvx512)) {
    tiers.push_back(KernelKind::kAvx512);
  }

  // Grab each tier's dispatch table once; "scalar loop" below always means
  // per-candidate calls of the scalar one-to-one kernel.
  std::vector<DistanceKernels> tables;
  for (const KernelKind kind : tiers) {
    if (!dblsh::simd::ForceKernel(kind).ok()) return 1;
    tables.push_back(dblsh::simd::Active());
  }
  dblsh::simd::UseAutoKernel();
  const DistanceKernels& scalar = tables[0];

  std::printf("bench_micro_distance: auto tier = %s\n",
              dblsh::simd::Active().name);
  std::printf("%6s  %6s  %18s  %14s  %9s\n", "dim", "rows", "kernel",
              "ns/candidate", "speedup");

  float checksum = 0.f;
  for (const size_t dim : dims) {
    const size_t n =
        n_override > 0
            ? n_override
            : std::clamp<size_t>(max_bytes / (dim * sizeof(float)), 256,
                                 8192);
    Rng rng(static_cast<uint64_t>(dim) * 977 + 1);
    std::vector<float> base(n * dim), query(dim);
    for (auto& v : base) v = static_cast<float>(rng.Gaussian());
    for (auto& v : query) v = static_cast<float>(rng.Gaussian());
    // Random visit order: index-emitted candidates are not sequential.
    std::vector<uint32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0u);
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(ids[i], ids[rng.UniformInt(i + 1)]);
    }
    std::vector<float> out(n);

    const double scalar_loop_ns = TimePerItem(n, [&] {
      float acc = 0.f;
      for (size_t i = 0; i < n; ++i) {
        acc += scalar.l2_squared(query.data(),
                                 base.data() + static_cast<size_t>(ids[i]) * dim,
                                 dim);
      }
      checksum += acc;
    });
    std::printf("%6zu  %6zu  %18s  %14.2f  %8.2fx\n", dim, n, "scalar loop",
                scalar_loop_ns, 1.0);

    for (const DistanceKernels& table : tables) {
      const double batch_ns = TimePerItem(n, [&] {
        table.l2_squared_batch(query.data(), base.data(), dim, ids.data(), n,
                               out.data());
        checksum += out[0];
      });
      std::printf("%6zu  %6zu  %12s batch  %14.2f  %8.2fx\n", dim, n,
                  table.name, batch_ns, scalar_loop_ns / batch_ns);
    }

    // PQ ADC scan at the same candidate stream: m = floor(0.48 * dim) code
    // bytes per row (the finest codebook under 0.12x of fp32, matching the
    // serving default), scored via per-query LUT accumulation. Baseline is
    // per-candidate scalar pq_adc calls; each tier's pq_adc_batch rides the
    // same prefetch scheme as the float kernels.
    const size_t m = std::max<size_t>(1, (dim * 48) / 100);
    std::vector<uint8_t> codes(n * m);
    for (auto& c : codes) c = static_cast<uint8_t>(rng.UniformInt(256));
    std::vector<float> lut(m * 256);
    for (auto& v : lut) v = static_cast<float>(rng.Uniform(0.0, 4.0));

    const double adc_scalar_ns = TimePerItem(n, [&] {
      float acc = 0.f;
      for (size_t i = 0; i < n; ++i) {
        acc += scalar.pq_adc(lut.data(),
                             codes.data() + static_cast<size_t>(ids[i]) * m, m);
      }
      checksum += acc;
    });
    std::printf("%6zu  %6zu  %18s  %14.2f  %8.2fx\n", dim, n,
                ("adc m=" + std::to_string(m) + " loop").c_str(),
                adc_scalar_ns, 1.0);
    for (const DistanceKernels& table : tables) {
      const double adc_batch_ns = TimePerItem(n, [&] {
        table.pq_adc_batch(lut.data(), codes.data(), m, ids.data(), n,
                           out.data());
        checksum += out[0];
      });
      std::printf("%6zu  %6zu  %14s adc  %14.2f  %8.2fx\n", dim, n,
                  table.name, adc_batch_ns, adc_scalar_ns / adc_batch_ns);
    }
  }
  // Keep the accumulators alive.
  std::printf("(checksum %g)\n", static_cast<double>(checksum));
  return 0;
}
