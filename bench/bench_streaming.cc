// Streaming-workload bench: the scenario DB-LSH's updatable structure
// opens that the static LSH baselines close off. A 90/5/5 mix of
// queries/upserts/deletes runs against a Collection serving ONE DB-LSH
// index that absorbs every mutation in place (R* insert,
// delete-with-reinsertion, dataset tombstones) — no rebuild at any point
// during the run. The Collection façade sequences the update protocol and
// commits each mutation transactionally; this bench drives the same API a
// serving process would (see bench_serving for the concurrent version).
// The reference is the strongest alternative a static scheme has: a full
// rebuild over the final dataset state at the same parameters. The claim
// measured here: after thousands of interleaved mutations, the streaming
// index's recall stays within ~2% of the freshly rebuilt one while the
// rebuild costs seconds of index downtime the streaming path never pays.
//
// Flags: --n (initial points, default 100000), --dim, --ops (mixed
// operations, default 4000), --k, --eval-queries, --seed, --pq-m (PQ
// subspace count for the storage comparison, 0 = floor(0.48 * dim), the
// finest codebook under 0.12x of the fp32 payload), --json[=PATH]
// (write machine-readable results, default path BENCH_streaming.json).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "core/collection.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "util/distance.h"
#include "util/perfmon.h"
#include "util/random.h"
#include "util/timer.h"

namespace dblsh {
namespace {

struct EvalResult {
  double recall = 0.0;
  double ratio = 0.0;
  double avg_ms = 0.0;
};

// Recall / overall-ratio / latency over the query set, against exact
// (tombstone-filtered) ground truth computed on the mutated data. The
// query callback abstracts over "the collection's index" vs "a freshly
// rebuilt index".
template <typename QueryFn>
EvalResult Evaluate(const QueryFn& query_fn, const FloatMatrix& data,
                    const FloatMatrix& queries, size_t k) {
  EvalResult r;
  double query_ms = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    Timer timer;
    const std::vector<Neighbor> answer = query_fn(queries.row(q), k);
    query_ms += timer.ElapsedMs();  // GT scan below stays untimed
    const auto gt = ExactKnn(data, queries.row(q), k);
    r.recall += eval::Recall(answer, gt);
    r.ratio += eval::OverallRatio(answer, gt);
  }
  const auto denom = static_cast<double>(queries.rows() ? queries.rows() : 1);
  r.avg_ms = query_ms / denom;
  r.recall /= denom;
  r.ratio /= denom;
  return r;
}

int Run(const bench::Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetInt("n", 100000));
  const auto dim = static_cast<size_t>(flags.GetInt("dim", 32));
  const auto ops = static_cast<size_t>(flags.GetInt("ops", 4000));
  const auto k = static_cast<size_t>(flags.GetInt("k", 10));
  const auto eval_queries =
      static_cast<size_t>(flags.GetInt("eval-queries", 50));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // One clustered cloud supplies everything: the initial collection
  // content, the pool of vectors the upsert ops stream in, and the query
  // points (perturbed live points drawn per query).
  const size_t upsert_ops = ops / 20;          // 5%
  const size_t delete_ops = ops / 20;          // 5%
  const size_t query_ops = ops - upsert_ops - delete_ops;  // ~90%
  ClusteredSpec spec;
  spec.n = n + upsert_ops;
  spec.dim = dim;
  // Many tight clusters over a moderate per-dimension range: ~10 points
  // per cluster with range ≈ 12x the local structure, the
  // range-to-structure ratio of normalized-embedding workloads. The wide
  // default (32 clusters over [0,100)) is an adversarial regime for any
  // scalar-quantized store — 255 levels spread over a range 50x the
  // neighbor gaps — and would measure the synthetic geometry rather than
  // the storage backend.
  spec.clusters = std::max<size_t>(32, spec.n / 10);
  spec.center_spread = 25.0;
  spec.seed = seed;
  const FloatMatrix cloud = GenerateClustered(spec);

  std::printf("initial n = %zu, dim = %zu; ops = %zu "
              "(%zu queries / %zu upserts / %zu deletes)\n\n",
              n, dim, ops, query_ops, upsert_ops, delete_ops);

  Timer build_timer;
  auto made = Collection::FromSpec(
      "collection: DB-LSH,name=streaming",
      std::make_unique<FloatMatrix>(cloud.Prefix(n)));
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  Collection& collection = *made.value();
  const auto* streaming =
      dynamic_cast<const DbLsh*>(collection.GetIndex("streaming"));
  const double initial_build_sec = build_timer.ElapsedSec();
  std::printf("initial build: %.3f s (t = %zu, l = %zu, k = %zu)\n",
              initial_build_sec, streaming->params().t,
              streaming->params().l, streaming->params().k);

  // The mixed phase. The op schedule is interleaved deterministically at
  // the 90/5/5 ratio (an upsert and a delete every 20 ops); queries probe
  // perturbed live points so they track the evolving distribution. The
  // local live-id list mirrors what the collection serves (ids are stable
  // under Collection's tombstone/recycle discipline).
  Rng rng(seed ^ 0x57EAAULL);
  std::vector<float> query_buf(dim);
  // Parallel mirrors of the collection's live set: the id (stable under
  // tombstone/recycle) and the vector the id serves (every vector comes
  // from `cloud`, so a row pointer suffices — no snapshot copies needed
  // on the hot path).
  std::vector<uint32_t> live;
  std::vector<const float*> live_vec;
  live.reserve(n + upsert_ops);
  live_vec.reserve(n + upsert_ops);
  for (uint32_t id = 0; id < n; ++id) {
    live.push_back(id);
    live_vec.push_back(cloud.row(id));
  }

  QueryRequest request;
  request.k = k;
  size_t next_pool_row = n;
  double query_ms = 0.0, upsert_ms = 0.0, delete_ms = 0.0;
  std::vector<double> query_latencies_ms;
  query_latencies_ms.reserve(query_ops);
  size_t queries_run = 0, upserts_run = 0, deletes_run = 0;
  for (size_t op = 0; op < ops; ++op) {
    const size_t phase = op % 20;
    if (phase == 7 && upserts_run < upsert_ops) {
      const float* vec = cloud.row(next_pool_row++);
      Timer t;
      auto up = collection.Upsert(vec, dim);
      if (!up.ok()) {
        std::fprintf(stderr, "upsert failed: %s\n",
                     up.status().ToString().c_str());
        return 1;
      }
      upsert_ms += t.ElapsedMs();
      live.push_back(up.value());
      live_vec.push_back(vec);
      ++upserts_run;
    } else if (phase == 13 && deletes_run < delete_ops) {
      const size_t pick = rng.UniformInt(live.size());
      const uint32_t id = live[pick];
      Timer t;
      if (Status s = collection.Delete(id); !s.ok()) {
        std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
        return 1;
      }
      delete_ms += t.ElapsedMs();
      live[pick] = live.back();
      live.pop_back();
      live_vec[pick] = live_vec.back();
      live_vec.pop_back();
      ++deletes_run;
    } else {
      const float* base = live_vec[rng.UniformInt(live_vec.size())];
      for (size_t j = 0; j < dim; ++j) {
        query_buf[j] =
            base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
      }
      Timer t;
      auto answer = collection.Search(query_buf.data(), request, "streaming");
      const double elapsed = t.ElapsedMs();
      query_ms += elapsed;
      query_latencies_ms.push_back(elapsed);
      if (!answer.ok()) {
        std::fprintf(stderr, "search failed: %s\n",
                     answer.status().ToString().c_str());
        return 1;
      }
      ++queries_run;
    }
  }
  std::printf("mixed phase: %zu queries (%.3f ms avg), %zu upserts "
              "(%.3f ms avg), %zu deletes (%.3f ms avg)\n",
              queries_run, query_ms / std::max<size_t>(1, queries_run),
              upserts_run, upsert_ms / std::max<size_t>(1, upserts_run),
              deletes_run, delete_ms / std::max<size_t>(1, deletes_run));
  const double streaming_qps =
      1000.0 * double(queries_run) / std::max(query_ms, 1e-9);
  const double query_p50_ms = bench::Percentile(&query_latencies_ms, 50.0);
  const double query_p99_ms = bench::Percentile(&query_latencies_ms, 99.0);
  std::printf("streaming QPS (query ops only): %.0f  "
              "(p50 %.3f ms, p99 %.3f ms)\n\n",
              streaming_qps, query_p50_ms, query_p99_ms);

  // Final accuracy: the collection's streaming index vs a full rebuild at
  // the *same* effective parameters over the same mutated dataset.
  const FloatMatrix final_data = collection.Snapshot();
  FloatMatrix eval_set(eval_queries, dim);
  for (size_t q = 0; q < eval_queries; ++q) {
    const float* base = final_data.row(live[rng.UniformInt(live.size())]);
    for (size_t j = 0; j < dim; ++j) {
      eval_set.at(q, j) =
          base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
    }
  }
  const EvalResult streamed = Evaluate(
      [&](const float* q, size_t kk) {
        QueryRequest r;
        r.k = kk;
        auto response = collection.Search(q, r, "streaming");
        return response.ok() ? std::move(response.value().neighbors)
                             : std::vector<Neighbor>{};
      },
      final_data, eval_set, k);

  DbLsh rebuilt(streaming->params());
  Timer rebuild_timer;
  if (Status s = rebuilt.Build(&final_data); !s.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double rebuild_sec = rebuild_timer.ElapsedSec();
  const EvalResult fresh = Evaluate(
      [&](const float* q, size_t kk) { return rebuilt.Query(q, kk); },
      final_data, eval_set, k);

  // Storage-backend comparison: the same fresh build over the mutated
  // dataset, but with the collection's rows held in the SQ8 quantized
  // store — candidates scored asymmetrically in u8, final top-k
  // re-ranked exactly in fp32. The claim: recall stays within 2% of the
  // fp32 build at ~4x lower payload bytes per vector.
  Timer sq8_timer;
  auto sq8_made = Collection::FromSpec(
      "collection,storage=sq8: DB-LSH,name=streaming",
      std::make_unique<FloatMatrix>(final_data));
  if (!sq8_made.ok()) {
    std::fprintf(stderr, "%s\n", sq8_made.status().ToString().c_str());
    return 1;
  }
  Collection& sq8_collection = *sq8_made.value();
  const double sq8_build_sec = sq8_timer.ElapsedSec();
  const EvalResult sq8_eval = Evaluate(
      [&](const float* q, size_t kk) {
        QueryRequest r;
        r.k = kk;
        auto response = sq8_collection.Search(q, r, "streaming");
        if (!response.ok()) return std::vector<Neighbor>{};
        std::vector<Neighbor> out = std::move(response.value().neighbors);
        // The quantized store reports distances to its decoded rows
        // (the fp32 payload is gone); rescore the returned ids against
        // the original data so Recall's distance matching measures
        // id-recall rather than per-row quantization noise.
        for (Neighbor& nb : out) {
          nb.dist = L2Distance(final_data.row(nb.id), q, dim);
        }
        std::sort(out.begin(), out.end());
        return out;
      },
      final_data, eval_set, k);
  // Product-quantized storage at m code bytes per vector: ADC table scan
  // in the hot path, same re-rank machinery. Unlike sq8, PQ's re-rank
  // re-scores against the same centroid decode the ADC table measures, so
  // recall is governed purely by codebook fineness — default m to the
  // finest codebook that still stays under 0.12x of the fp32 payload
  // (floor(0.48 * dim) code bytes vs 4 * dim fp32 bytes).
  size_t pq_m = static_cast<size_t>(flags.GetInt("pq-m", 0));
  if (pq_m == 0) {
    pq_m = std::max<size_t>(1, (dim * 48) / 100);
  }
  Timer pq_timer;
  auto pq_made = Collection::FromSpec(
      "collection,storage=pq,m=" + std::to_string(pq_m) +
          ": DB-LSH,name=streaming",
      std::make_unique<FloatMatrix>(final_data));
  if (!pq_made.ok()) {
    std::fprintf(stderr, "%s\n", pq_made.status().ToString().c_str());
    return 1;
  }
  Collection& pq_collection = *pq_made.value();
  const double pq_build_sec = pq_timer.ElapsedSec();
  const EvalResult pq_eval = Evaluate(
      [&](const float* q, size_t kk) {
        QueryRequest r;
        r.k = kk;
        auto response = pq_collection.Search(q, r, "streaming");
        if (!response.ok()) return std::vector<Neighbor>{};
        std::vector<Neighbor> out = std::move(response.value().neighbors);
        // Same id-recall rescore as the sq8 arm.
        for (Neighbor& nb : out) {
          nb.dist = L2Distance(final_data.row(nb.id), q, dim);
        }
        std::sort(out.begin(), out.end());
        return out;
      },
      final_data, eval_set, k);
  const CollectionStorageInfo fp32_storage = collection.Storage();
  const CollectionStorageInfo sq8_storage = sq8_collection.Storage();
  const CollectionStorageInfo pq_storage = pq_collection.Storage();

  eval::Table table({"Index", "Recall@" + std::to_string(k), "Ratio",
                     "ms/query", "(Re)build s", "B/vec"});
  table.AddRow({"streaming (no rebuild)", eval::Table::Fmt(streamed.recall, 3),
                eval::Table::Fmt(streamed.ratio, 4),
                eval::Table::Fmt(streamed.avg_ms, 3), "0.000",
                std::to_string(fp32_storage.bytes_per_vector)});
  table.AddRow({"full rebuild", eval::Table::Fmt(fresh.recall, 3),
                eval::Table::Fmt(fresh.ratio, 4),
                eval::Table::Fmt(fresh.avg_ms, 3),
                eval::Table::Fmt(rebuild_sec, 3),
                std::to_string(fp32_storage.bytes_per_vector)});
  table.AddRow({"sq8 rebuild (rerank x" + std::to_string(sq8_storage.rerank) +
                    ")",
                eval::Table::Fmt(sq8_eval.recall, 3),
                eval::Table::Fmt(sq8_eval.ratio, 4),
                eval::Table::Fmt(sq8_eval.avg_ms, 3),
                eval::Table::Fmt(sq8_build_sec, 3),
                std::to_string(sq8_storage.bytes_per_vector)});
  table.AddRow({"pq rebuild (m=" + std::to_string(pq_m) + ", rerank x" +
                    std::to_string(pq_storage.rerank) + ")",
                eval::Table::Fmt(pq_eval.recall, 3),
                eval::Table::Fmt(pq_eval.ratio, 4),
                eval::Table::Fmt(pq_eval.avg_ms, 3),
                eval::Table::Fmt(pq_build_sec, 3),
                std::to_string(pq_storage.bytes_per_vector)});
  table.Print();
  std::printf("\nrecall delta (rebuild - streaming): %+.3f  "
              "(target: within 0.02)\n",
              fresh.recall - streamed.recall);
  std::printf("recall delta (rebuild - sq8): %+.3f  (target: within 0.02); "
              "payload %zu -> %zu bytes/vector (%.1fx smaller)\n",
              fresh.recall - sq8_eval.recall, fp32_storage.bytes_per_vector,
              sq8_storage.bytes_per_vector,
              sq8_storage.bytes_per_vector > 0
                  ? double(fp32_storage.bytes_per_vector) /
                        double(sq8_storage.bytes_per_vector)
                  : 0.0);
  std::printf("recall delta (rebuild - pq): %+.3f  (target: within 0.03); "
              "payload %zu -> %zu bytes/vector (%.1fx smaller)\n",
              fresh.recall - pq_eval.recall, fp32_storage.bytes_per_vector,
              pq_storage.bytes_per_vector,
              pq_storage.bytes_per_vector > 0
                  ? double(fp32_storage.bytes_per_vector) /
                        double(pq_storage.bytes_per_vector)
                  : 0.0);
  std::printf("live points at end: %zu (of %zu slots)\n",
              collection.size(), final_data.rows());

  if (flags.Has("json")) {
    std::string path = flags.GetString("json", "BENCH_streaming.json");
    if (path == "1") path = "BENCH_streaming.json";  // bare --json
    bench::Json json = bench::Json::Object();
    json.Set("bench", "streaming")
        .Set("n", n)
        .Set("dim", dim)
        .Set("ops", ops)
        .Set("k", k)
        .Set("initial_build_seconds", initial_build_sec)
        .Set("streaming_qps", streaming_qps)
        .Set("query_p50_ms", query_p50_ms)
        .Set("query_p99_ms", query_p99_ms)
        .Set("streaming_recall", streamed.recall)
        .Set("streaming_ratio", streamed.ratio)
        .Set("streaming_ms_per_query", streamed.avg_ms)
        .Set("rebuilt_recall", fresh.recall)
        .Set("rebuilt_ratio", fresh.ratio)
        .Set("rebuilt_ms_per_query", fresh.avg_ms)
        .Set("rebuild_seconds", rebuild_sec)
        .Set("recall_delta", fresh.recall - streamed.recall);
    json.Set("storage",
             bench::Json::Object()
                 .Set("fp32_kind", fp32_storage.kind)
                 .Set("fp32_bytes_per_vector", fp32_storage.bytes_per_vector)
                 .Set("fp32_recall", fresh.recall)
                 .Set("sq8_kind", sq8_storage.kind)
                 .Set("sq8_bytes_per_vector", sq8_storage.bytes_per_vector)
                 .Set("sq8_rerank", sq8_storage.rerank)
                 .Set("sq8_recall", sq8_eval.recall)
                 .Set("sq8_ms_per_query", sq8_eval.avg_ms)
                 .Set("sq8_build_seconds", sq8_build_sec)
                 .Set("sq8_resident_bytes", sq8_storage.resident_bytes)
                 .Set("fp32_resident_bytes", fp32_storage.resident_bytes)
                 .Set("pq_kind", pq_storage.kind)
                 .Set("pq_m", pq_m)
                 .Set("pq_bytes_per_vector", pq_storage.bytes_per_vector)
                 .Set("pq_rerank", pq_storage.rerank)
                 .Set("pq_recall", pq_eval.recall)
                 .Set("pq_ms_per_query", pq_eval.avg_ms)
                 .Set("pq_build_seconds", pq_build_sec)
                 .Set("pq_resident_bytes", pq_storage.resident_bytes));
    const perfmon::MemoryUsage mem = perfmon::SampleMemory();
    json.Set("memory", bench::Json::Object()
                           .Set("resident_bytes", mem.resident_bytes)
                           .Set("peak_resident_bytes",
                                mem.peak_resident_bytes));
    if (!json.WriteTo(path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Streaming workload: 90/5/5 query/upsert/delete mix",
      "A Collection serving DB-LSH absorbs online upserts and deletes in "
      "place; after the full mixed run its recall stays within ~2% of a "
      "freshly rebuilt index, with zero rebuild downtime.");
  return dblsh::Run(flags);
}
