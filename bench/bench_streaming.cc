// Streaming-workload bench: the scenario DB-LSH's updatable structure
// opens that the static LSH baselines close off. A 90/5/5 mix of
// queries/inserts/erases runs against ONE DB-LSH index that absorbs every
// mutation in place (R* insert, delete-with-reinsertion, dataset
// tombstones) — no rebuild at any point during the run. The reference is
// the strongest alternative a static scheme has: a full rebuild over the
// final dataset state at the same parameters. The claim measured here:
// after thousands of interleaved mutations, the streaming index's recall
// stays within ~2% of the freshly rebuilt one while the rebuild costs
// seconds of index downtime the streaming path never pays.
//
// Flags: --n (initial points, default 100000), --dim, --ops (mixed
// operations, default 4000), --k, --eval-queries, --seed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "util/random.h"
#include "util/timer.h"

namespace dblsh {
namespace {

struct EvalResult {
  double recall = 0.0;
  double ratio = 0.0;
  double avg_ms = 0.0;
};

// Recall / overall-ratio / latency of `index` over the query set, against
// exact (tombstone-filtered) ground truth computed on the mutated data.
EvalResult Evaluate(const DbLsh& index, const FloatMatrix& data,
                    const FloatMatrix& queries, size_t k) {
  EvalResult r;
  double query_ms = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    Timer timer;
    const auto answer = index.Query(queries.row(q), k);
    query_ms += timer.ElapsedMs();  // GT scan below stays untimed
    const auto gt = ExactKnn(data, queries.row(q), k);
    r.recall += eval::Recall(answer, gt);
    r.ratio += eval::OverallRatio(answer, gt);
  }
  const auto denom = static_cast<double>(queries.rows() ? queries.rows() : 1);
  r.avg_ms = query_ms / denom;
  r.recall /= denom;
  r.ratio /= denom;
  return r;
}

int Run(const bench::Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetInt("n", 100000));
  const auto dim = static_cast<size_t>(flags.GetInt("dim", 32));
  const auto ops = static_cast<size_t>(flags.GetInt("ops", 4000));
  const auto k = static_cast<size_t>(flags.GetInt("k", 10));
  const auto eval_queries =
      static_cast<size_t>(flags.GetInt("eval-queries", 50));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // One clustered cloud supplies everything: the initial index content,
  // the pool of vectors the insert ops stream in, and the query points
  // (perturbed live points drawn per query).
  const size_t insert_ops = ops / 20;          // 5%
  const size_t erase_ops = ops / 20;           // 5%
  const size_t query_ops = ops - insert_ops - erase_ops;  // ~90%
  ClusteredSpec spec;
  spec.n = n + insert_ops;
  spec.dim = dim;
  spec.clusters = 32;
  spec.seed = seed;
  const FloatMatrix cloud = GenerateClustered(spec);
  FloatMatrix data = cloud.Prefix(n);

  std::printf("initial n = %zu, dim = %zu; ops = %zu "
              "(%zu queries / %zu inserts / %zu erases)\n\n",
              n, dim, ops, query_ops, insert_ops, erase_ops);

  DbLsh streaming;
  Timer build_timer;
  if (Status s = streaming.Build(&data); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const double initial_build_sec = build_timer.ElapsedSec();
  std::printf("initial build: %.3f s (t = %zu, l = %zu, k = %zu)\n",
              initial_build_sec, streaming.params().t, streaming.params().l,
              streaming.params().k);

  // The mixed phase. The op schedule is interleaved deterministically at
  // the 90/5/5 ratio (an insert and an erase every 20 ops); queries probe
  // perturbed live points so they track the evolving distribution.
  Rng rng(seed ^ 0x57EAAULL);
  std::vector<float> query_buf(dim);
  auto random_live_id = [&]() -> uint32_t {
    while (true) {
      const auto id = static_cast<uint32_t>(rng.UniformInt(data.rows()));
      if (!data.IsDeleted(id)) return id;
    }
  };
  size_t next_pool_row = n;
  double query_ms = 0.0, insert_ms = 0.0, erase_ms = 0.0;
  size_t queries_run = 0, inserts_run = 0, erases_run = 0;
  for (size_t op = 0; op < ops; ++op) {
    const size_t phase = op % 20;
    if (phase == 7 && inserts_run < insert_ops) {
      Timer t;
      const uint32_t id = data.InsertRow(cloud.row(next_pool_row++), dim);
      if (Status s = streaming.Insert(id); !s.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
        return 1;
      }
      insert_ms += t.ElapsedMs();
      ++inserts_run;
    } else if (phase == 13 && erases_run < erase_ops) {
      const uint32_t id = random_live_id();
      Timer t;
      if (Status s = data.EraseRow(id); !s.ok()) {
        std::fprintf(stderr, "erase failed: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = streaming.Erase(id); !s.ok()) {
        std::fprintf(stderr, "erase failed: %s\n", s.ToString().c_str());
        return 1;
      }
      erase_ms += t.ElapsedMs();
      ++erases_run;
    } else {
      const uint32_t id = random_live_id();
      const float* base = data.row(id);
      for (size_t j = 0; j < dim; ++j) {
        query_buf[j] =
            base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
      }
      Timer t;
      const auto answer = streaming.Query(query_buf.data(), k);
      query_ms += t.ElapsedMs();
      (void)answer;
      ++queries_run;
    }
  }
  std::printf("mixed phase: %zu queries (%.3f ms avg), %zu inserts "
              "(%.3f ms avg), %zu erases (%.3f ms avg)\n",
              queries_run, query_ms / std::max<size_t>(1, queries_run),
              inserts_run, insert_ms / std::max<size_t>(1, inserts_run),
              erases_run, erase_ms / std::max<size_t>(1, erases_run));
  std::printf("streaming QPS (query ops only): %.0f\n\n",
              1000.0 * double(queries_run) / std::max(query_ms, 1e-9));

  // Final accuracy: streaming index vs a full rebuild at the *same*
  // effective parameters over the same mutated dataset.
  FloatMatrix eval_set(eval_queries, dim);
  for (size_t q = 0; q < eval_queries; ++q) {
    const float* base = data.row(random_live_id());
    for (size_t j = 0; j < dim; ++j) {
      eval_set.at(q, j) =
          base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
    }
  }
  const EvalResult streamed = Evaluate(streaming, data, eval_set, k);

  DbLsh rebuilt(streaming.params());
  Timer rebuild_timer;
  if (Status s = rebuilt.Build(&data); !s.ok()) {
    std::fprintf(stderr, "rebuild failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double rebuild_sec = rebuild_timer.ElapsedSec();
  const EvalResult fresh = Evaluate(rebuilt, data, eval_set, k);

  eval::Table table({"Index", "Recall@" + std::to_string(k), "Ratio",
                     "ms/query", "(Re)build s"});
  table.AddRow({"streaming (no rebuild)", eval::Table::Fmt(streamed.recall, 3),
                eval::Table::Fmt(streamed.ratio, 4),
                eval::Table::Fmt(streamed.avg_ms, 3), "0.000"});
  table.AddRow({"full rebuild", eval::Table::Fmt(fresh.recall, 3),
                eval::Table::Fmt(fresh.ratio, 4),
                eval::Table::Fmt(fresh.avg_ms, 3),
                eval::Table::Fmt(rebuild_sec, 3)});
  table.Print();
  std::printf("\nrecall delta (rebuild - streaming): %+.3f  "
              "(target: within 0.02)\n",
              fresh.recall - streamed.recall);
  std::printf("live points at end: %zu (of %zu slots)\n", data.live_rows(),
              data.rows());
  return 0;
}

}  // namespace
}  // namespace dblsh

int main(int argc, char** argv) {
  dblsh::bench::Flags flags(argc, argv);
  dblsh::bench::PrintBanner(
      "Streaming workload: 90/5/5 query/insert/erase mix",
      "DB-LSH's R*-tree hash tables absorb online inserts and erases in "
      "place; after the full mixed run its recall stays within ~2% of a "
      "freshly rebuilt index, with zero rebuild downtime.");
  return dblsh::Run(flags);
}
