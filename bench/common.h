#ifndef DBLSH_BENCH_COMMON_H_
#define DBLSH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/synthetic.h"
#include "eval/runner.h"

namespace dblsh::bench {

/// Minimal --key=value flag parsing shared by the bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool Has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Builds the stand-in workload for a named paper dataset (Table III),
/// scaled by `scale`. Names match `PaperDatasetProfiles`.
eval::Workload ProfileWorkload(const std::string& name, double scale,
                               size_t num_queries, size_t k,
                               uint64_t seed = 7);

/// Prints the standard bench banner (what the binary reproduces and the
/// paper-reported reference shape).
void PrintBanner(const std::string& experiment, const std::string& claim);

/// The p-th percentile (p in [0, 100]) of `samples` by nearest-rank;
/// sorts the vector in place. Returns 0 for an empty sample set.
double Percentile(std::vector<double>* samples, double p);

/// Minimal JSON document builder for the machine-readable bench outputs
/// (BENCH_*.json): objects, arrays, numbers, strings, booleans. Enough to
/// make the perf trajectory trackable across PRs without a dependency.
///
///   Json root = Json::Object();
///   root.Set("qps", 12345.6).Set("bench", "serving");
///   Json cells = Json::Array();
///   cells.Append(Json::Object().Set("readers", 4).Set("p99_ms", 0.8));
///   root.Set("cells", std::move(cells));
///   root.WriteTo("BENCH_serving.json");
class Json {
 public:
  /// A null value; use the factories below for containers.
  Json() = default;
  static Json Object();
  static Json Array();

  /// Scalar constructors (implicit, so Set/Append take them directly).
  Json(double v);              // NOLINT(google-explicit-constructor)
  Json(int v);                 // NOLINT(google-explicit-constructor)
  Json(int64_t v);             // NOLINT(google-explicit-constructor)
  Json(size_t v);              // NOLINT(google-explicit-constructor)
  Json(bool v);                // NOLINT(google-explicit-constructor)
  Json(const char* v);         // NOLINT(google-explicit-constructor)
  Json(std::string v);         // NOLINT(google-explicit-constructor)

  /// Sets `key` on an object; returns *this for chaining.
  Json& Set(const std::string& key, Json value);

  /// Appends to an array; returns *this for chaining.
  Json& Append(Json value);

  /// Serializes with 2-space indentation.
  std::string Dump(int indent = 0) const;

  /// Writes Dump() to `path` (trailing newline included); prints the
  /// destination on success. Returns false (with a stderr note) on I/O
  /// failure.
  bool WriteTo(const std::string& path) const;

 private:
  enum class Kind { kNull, kObject, kArray, kNumber, kBool, kString };
  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  bool bool_ = false;
  bool integral_ = false;  ///< print number_ without a decimal point
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> elements_;                         // kArray
};

}  // namespace dblsh::bench

#endif  // DBLSH_BENCH_COMMON_H_
