#ifndef DBLSH_BENCH_COMMON_H_
#define DBLSH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/synthetic.h"
#include "eval/runner.h"

namespace dblsh::bench {

/// Minimal --key=value flag parsing shared by the bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool Has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Builds the stand-in workload for a named paper dataset (Table III),
/// scaled by `scale`. Names match `PaperDatasetProfiles`.
eval::Workload ProfileWorkload(const std::string& name, double scale,
                               size_t num_queries, size_t k,
                               uint64_t seed = 7);

/// Prints the standard bench banner (what the binary reproduces and the
/// paper-reported reference shape).
void PrintBanner(const std::string& experiment, const std::string& claim);

}  // namespace dblsh::bench

#endif  // DBLSH_BENCH_COMMON_H_
